//! Phase analysis and dynamic redistribution.
//!
//! The SC'93 framework solves alignment and distribution for a whole program
//! against a *single* static distribution — even when a transpose-heavy
//! second half inverts the communication pattern of the first, so that no
//! one distribution is good everywhere. This crate adds the decision layer
//! the paper defers: it
//!
//! 1. [`segment`] — fissions the program into *distributable atoms* (loop
//!    distribution, [`align_ir::fission`]), aligns each atom **exactly
//!    once** into an [`AtomAnalysis`], and partitions the atom sequence into
//!    *phases* at communication-topology change points, detected from each
//!    atom's residual traffic (which template axis the data moves along,
//!    from the ADG edge weights) and from axis-permutation flips of shared
//!    arrays — so a topology flip *inside* a distribution-safe loop body is
//!    a cuttable seam;
//! 2. ranks a shared pool of [`distrib::ProgramDistribution`] signatures per
//!    phase by pricing each atom's single analysis (no phase is ever
//!    re-aligned), and prunes each phase's candidate layer by *dominance* —
//!    a candidate survives only if no other candidate is simultaneously no
//!    worse on the in-phase cost and on every boundary-redistribution edge;
//! 3. [`redist`] — prices the inter-phase redistribution edges
//!    (BLOCK ↔ CYCLIC remaps, transpose-style all-to-alls, replication
//!    spreads and collapses) with a [`RedistCost`] model consistent with
//!    [`distrib::DistribCostParams`], backed by the exact
//!    [`commsim::redistribution_traffic`] owner comparison against the
//!    *chosen resting placement* ([`commsim::RestingPlacement`]) — an array
//!    untouched by a boundary's source phase may rest in either adjacent
//!    candidate's layout;
//! 4. [`dynamic`] — solves the resulting layered DAG (one layer per phase,
//!    one node per surviving candidate, redistribution costs on the edges)
//!    by shortest path, emitting a [`DynamicDistribution`]: a distribution
//!    per phase plus explicit redistribution steps between them;
//! 5. [`pipeline`] — [`align_then_distribute_dynamic`], the three-stage
//!    driver (align → distribute per phase → redistribute between phases),
//!    with [`simulate_dynamic`] validating the whole plan end to end in the
//!    communication simulator.

pub mod dynamic;
pub mod pipeline;
pub mod redist;
pub mod segment;

pub use dynamic::{solve_dynamic, DynamicDistribution, PhaseCandidates, RedistStep};
pub use pipeline::{
    align_then_distribute_dynamic, simulate_dynamic, simulate_static, DynamicConfig,
    DynamicPipelineResult, DynamicSimReport, PhaseResult,
};
pub use redist::{price_redistribution, price_resting, RedistCost};
pub use segment::{
    analyze_atoms, detect_boundaries, detect_phase_boundaries, AtomAnalysis, PhaseSignature,
    SegmentationConfig,
};
