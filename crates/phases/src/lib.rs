//! Phase analysis and dynamic redistribution.
//!
//! The SC'93 framework solves alignment and distribution for a whole program
//! against a *single* static distribution — even when a transpose-heavy
//! second half inverts the communication pattern of the first, so that no
//! one distribution is good everywhere. This crate adds the decision layer
//! the paper defers: it
//!
//! 1. [`segment`] — partitions the program's top-level statement sequence
//!    into *phases* at communication-topology change points, detected from
//!    the per-segment alignment's residual traffic (which template axis the
//!    data moves along, from the ADG edge weights) and from axis-permutation
//!    flips of shared arrays;
//! 2. ranks the top-K [`distrib::ProgramDistribution`] candidates per phase
//!    by reusing the distribution solver on each phase in isolation;
//! 3. [`redist`] — prices the inter-phase redistribution edges
//!    (BLOCK ↔ CYCLIC remaps, transpose-style all-to-alls, replication
//!    spreads and collapses) with a [`RedistCost`] model consistent with
//!    [`distrib::DistribCostParams`], backed by the exact
//!    [`commsim::redistribution_traffic`] owner comparison;
//! 4. [`dynamic`] — solves the resulting layered DAG (one layer per phase,
//!    one node per ranked candidate, redistribution costs on the edges) by
//!    shortest path, emitting a [`DynamicDistribution`]: a distribution per
//!    phase plus explicit redistribution steps between them;
//! 5. [`pipeline`] — [`align_then_distribute_dynamic`], the three-stage
//!    driver (align → distribute per phase → redistribute between phases),
//!    with [`simulate_dynamic`] validating the whole plan end to end in the
//!    communication simulator.

pub mod dynamic;
pub mod pipeline;
pub mod redist;
pub mod segment;

pub use dynamic::{solve_dynamic, DynamicDistribution, PhaseCandidates, RedistStep};
pub use pipeline::{
    align_then_distribute_dynamic, simulate_dynamic, simulate_static, DynamicConfig,
    DynamicPipelineResult, DynamicSimReport, PhaseResult,
};
pub use redist::{price_redistribution, RedistCost};
pub use segment::{detect_phase_boundaries, PhaseSignature, SegmentationConfig};
