//! The three-stage pipeline: align → distribute per phase → redistribute
//! between phases — built on a **single analysis per atom** and priced by a
//! **per-array layout-state DP** whose plan cost is exactly what the
//! communication simulator reports.
//!
//! [`align_then_distribute_dynamic`] fissions the program into distributable
//! atoms (loop distribution, [`align_ir::fission`]), aligns each atom
//! exactly once ([`crate::segment::analyze_atoms`]), and threads that one
//! [`AtomAnalysis`] through everything downstream. Candidate generation
//! searches the (grid, layout) signature space **once per phase** on the
//! phase's covering template ([`distrib::solve_distribution_pooled`]) —
//! atoms never re-enumerate the same grids — and every phase prices the
//! shared signature pool so "staying put" is always a comparable option.
//!
//! The decision layer is exact: each candidate's in-phase cost is its
//! **simulated element traffic** (every atom played through `commsim` under
//! the candidate instantiated on the phase's covering template), and the
//! per-array layout-state DP ([`crate::dynamic::solve_layout_dp`]) prices a
//! transition into a phase as the exact redistribution of just the arrays
//! that phase touches, each from the layout chosen by the phase that
//! *actually last used it* — no min-over-adjacent-candidates guess, no
//! per-gap special case. The plan's [`DynamicDistribution::planned_cost`]
//! therefore equals [`simulate_dynamic`]'s total under the same
//! [`SimOptions`] (identical under [`SimOptions::exact`]) — the priced plan
//! *is* the simulated plan.
//!
//! Boundary selection is DAG-driven with hysteresis: detection proposes
//! seams generously, the DP decides which to use (a layout switch must beat
//! staying put by [`DynamicConfig::switch_margin`]), and proposed seams the
//! chosen path leaves unused — same layout and same covering template on
//! both sides, no array actually moving, so the merge is exactly
//! cost-neutral — are coalesced away: a per-array move never forces a
//! global cut.

use crate::dynamic::{
    solve_layout_dp, solve_layout_dp_with, DpPricer, DpPruning, DynamicDistribution, LayoutDpError,
    LayoutDpPlan, PhaseCandidates, RedistStep, SigId,
};
use crate::redist::{price_resting, RedistCost};
use crate::segment::{analyze_atoms, detect_boundaries, AtomAnalysis, SegmentationConfig};
use adg::{Adg, NodeKind, PortId};
use align_ir::{ArrayId, Program};
use alignment_core::pipeline::PipelineConfig;
use alignment_core::position::PortAlignment;
use commsim::{identical_placement_traffic, simulate, RestingPlacement, SimOptions, SimReport};
use distrib::{
    align_then_distribute, distribute_alignment, solve_distribution_pooled, DistributionCost,
    DistributionCostModel, DistributionReport, FullPipelineConfig, FullPipelineResult, Layout,
    ProgramDistribution, RankedDistribution, SolveConfig,
};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Configuration of the dynamic pipeline.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Alignment configuration (used for each atom and for the static
    /// baseline).
    pub alignment: PipelineConfig,
    /// Distribution search per phase, minus the processor count. `None` keys
    /// every knob off [`SolveConfig::new`].
    pub distribution: Option<SolveConfig>,
    /// Safety bound on the candidate layer size per phase, applied (by
    /// ascending model cost) before the DP; every phase's model optimum is
    /// exempt — it stays in every layer even past the cap, so "staying put"
    /// on a favourite is always priced (layers are therefore bounded by
    /// `cap + #phases`).
    pub max_candidates_per_phase: usize,
    /// Explicit phase boundaries — indices into the **distributable atom**
    /// sequence ([`Program::distributable_atoms`]) — overriding detection.
    /// `None` runs [`detect_boundaries`].
    pub boundaries: Option<Vec<usize>>,
    /// Residual-volume threshold below which an atom is neutral during
    /// boundary detection.
    pub neutral_volume: f64,
    /// Sampling bounds for all plan pricing (in-phase simulation and
    /// redistribution pricing). [`DynamicDistribution::planned_cost`] is
    /// exact when this is [`SimOptions::exact`].
    pub sim: SimOptions,
    /// Hysteresis of the layout-state DP: during the search an array's
    /// layout switch is charged this many extra elements, so a switch must
    /// beat staying put by a margin before the plan takes it (guards
    /// against sampling noise flip-flopping layouts). Search-only — the
    /// returned plan is re-priced exactly, without the margin.
    pub switch_margin: f64,
    /// DAG-driven boundary selection: when true (the default), detected
    /// boundaries the chosen path does not use — identical layout and
    /// identical covering template on both sides, no array paying any
    /// redistribution — are coalesced away and the adjacent phases merged.
    /// The equal-cover requirement makes every merge exactly cost-neutral.
    pub coalesce_phases: bool,
    /// Memoise redistribution pricing in the layout-state DP (the
    /// `MovePricer` cache). On by default; turning it off re-prices every
    /// `(phase, array, src, dst)` query from scratch. The plan is
    /// unchanged — this is an ablation/diagnostic knob, and the canonical
    /// "injected algorithmic regression" the counter gate's tests use:
    /// disabling it shifts `phases.pricer.*` and the downstream `commsim.*`
    /// pricing counters without moving any cost.
    pub pricer_memo: bool,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            alignment: PipelineConfig::default(),
            distribution: None,
            max_candidates_per_phase: 12,
            boundaries: None,
            neutral_volume: 0.0,
            sim: SimOptions::default(),
            switch_margin: 0.0,
            coalesce_phases: true,
            pricer_memo: true,
        }
    }
}

impl DynamicConfig {
    fn solve_config(&self, nprocs: usize) -> SolveConfig {
        match &self.distribution {
            Some(cfg) => SolveConfig {
                nprocs,
                ..cfg.clone()
            },
            None => SolveConfig::new(nprocs),
        }
    }
}

/// Everything one phase produced. A phase is a contiguous run of atoms;
/// everything here is assembled from the atoms' single analyses — the phase
/// is never re-aligned as a whole.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Atom-index range `[start, end)` of the phase within the program's
    /// distributable-atom sequence.
    pub atom_range: (usize, usize),
    /// Top-level statement span `[start, end)` the phase's atoms originate
    /// from. Spans of adjacent phases overlap when loop distribution split
    /// one statement across a boundary.
    pub range: (usize, usize),
    /// The phase's atoms, each carrying its one-and-only analysis.
    pub atoms: Vec<AtomAnalysis>,
    /// Each atom's own template extents (diagnostic; pricing and simulation
    /// always instantiate candidates on the covering template,
    /// `report.template_extents`).
    pub atom_templates: Vec<Vec<i64>>,
    /// The phase-level report: one signature-space search over all the
    /// phase's atoms (shared enumeration), re-priced over the shared pool,
    /// ranked ascending by model cost on the phase's covering template.
    /// `best()` is the phase's model optimum.
    pub report: DistributionReport,
}

impl PhaseResult {
    /// The arrays this phase reads or assigns.
    pub fn referenced(&self) -> BTreeSet<ArrayId> {
        let mut out = BTreeSet::new();
        for a in &self.atoms {
            out.extend(a.referenced.iter().copied());
        }
        out
    }

    /// The covering template the phase's candidates are instantiated on:
    /// the elementwise max of its atoms' template extents. Pricing every
    /// atom on this shared cover (rather than on its own, possibly smaller
    /// template) is what keeps intra-phase seams honest — an atom touching
    /// a half-sized array sees the same block boundaries the rest of the
    /// phase sees, instead of a twice-as-fine grid that inflates its shift
    /// traffic.
    pub fn cover_extents(&self) -> &[i64] {
        &self.report.template_extents
    }
}

/// A (grid, per-axis layout) signature — the portable identity of a
/// distribution, instantiable on any template extents. Per-array layout
/// state in the DP is tracked as indices ([`SigId`]) into the shared pool
/// of these.
pub type Sig = (Vec<usize>, Vec<Layout>);

/// Adapt a signature to a template of rank `rank`: missing axes get one
/// processor (BLOCK), excess grid dimensions are folded into the last kept
/// one (preserving the processor count).
fn adapt_sig(sig: &Sig, rank: usize) -> Sig {
    let (grid, layouts) = sig;
    let rank = rank.max(1);
    match grid.len().cmp(&rank) {
        std::cmp::Ordering::Equal => sig.clone(),
        std::cmp::Ordering::Less => {
            let mut g = grid.clone();
            let mut l = layouts.clone();
            g.resize(rank, 1);
            l.resize(rank, Layout::Block);
            (g, l)
        }
        std::cmp::Ordering::Greater => {
            let mut g = grid[..rank].to_vec();
            let folded: usize = grid[rank - 1..].iter().product();
            g[rank - 1] = folded;
            (g, layouts[..rank].to_vec())
        }
    }
}

/// Instantiate a signature on a concrete template.
fn instantiate(sig: &Sig, extents: &[i64]) -> ProgramDistribution {
    let (grid, layouts) = adapt_sig(sig, extents.len());
    ProgramDistribution::new(extents, &grid, &layouts)
}

/// The portable signature of a concrete distribution.
fn sig_of(d: &ProgramDistribution) -> Sig {
    (d.grid(), d.layouts())
}

/// A one-line digest of what one [`align_then_distribute_dynamic`] run did
/// internally, assembled from the trace-counter deltas of the run (so
/// identical solves report identical numbers). Spans are counted only when
/// span recording is enabled ([`trace::TraceConfig`]); every other field is
/// always live.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveSummary {
    /// Timed spans the run recorded (0 with tracing disabled).
    pub spans: usize,
    /// Widest layer of the layout-state DP (live states after merging).
    pub peak_dp_layer_width: usize,
    /// Memoised boundary-pricing lookups answered from the memo.
    pub pricer_hits: u64,
    /// Boundary-pricing lookups that had to price from scratch.
    pub pricer_misses: u64,
    /// LP simplex pivots spent across all alignment solves.
    pub lp_pivots: u64,
}

impl SolveSummary {
    fn from_run(
        at_entry: &trace::CounterSnapshot,
        spans: usize,
        peak_dp_layer_width: usize,
    ) -> SolveSummary {
        let delta = trace::CounterSnapshot::now().delta_since(at_entry);
        let get = |name: &str| delta.counters.get(name).copied().unwrap_or(0);
        SolveSummary {
            spans,
            peak_dp_layer_width,
            pricer_hits: get("phases.pricer.hits"),
            pricer_misses: get("phases.pricer.misses"),
            lp_pivots: get("lp.pivots"),
        }
    }

    /// Fraction of boundary-pricing lookups answered from the memo, as a
    /// percentage (0 when the run priced no boundaries).
    pub fn pricer_hit_pct(&self) -> f64 {
        let total = self.pricer_hits + self.pricer_misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.pricer_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for SolveSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "solve: {} spans, peak DP layer {}, pricer hit {:.0}% ({}/{}), {} LP pivots",
            self.spans,
            self.peak_dp_layer_width,
            self.pricer_hit_pct(),
            self.pricer_hits,
            self.pricer_hits + self.pricer_misses,
            self.lp_pivots
        )
    }
}

/// The dynamic pipeline's full output.
#[derive(Debug, Clone)]
pub struct DynamicPipelineResult {
    /// Processor count everything is distributed over.
    pub nprocs: usize,
    /// Per-phase analyses, in program order (after boundary coalescing).
    pub phases: Vec<PhaseResult>,
    /// Arrays priced at each boundary: `(array, name, extents)` — the arrays
    /// whose *next* use after the boundary is the immediately following
    /// phase. An array that skips phases appears only where it comes back
    /// into use; it is priced there from its true last-use layout.
    pub live: Vec<Vec<(ArrayId, String, Vec<i64>)>>,
    /// The shared signature pool all phases price.
    pub pool: Vec<Sig>,
    /// The candidate layer of each phase the DP chose from (model-capped,
    /// with every phase's favourite retained; `costs` are in-phase
    /// simulated elements).
    pub layers: Vec<PhaseCandidates>,
    /// The chosen dynamic distribution, priced exactly.
    pub dynamic: DynamicDistribution,
    /// The whole-program static solution, for comparison.
    pub static_result: FullPipelineResult,
    /// Simulated element traffic of the static solution under
    /// [`DynamicConfig::sim`] — the number [`DynamicDistribution::planned_cost`]
    /// is compared against (same units, same options).
    pub static_planned_cost: f64,
    /// One-line digest of the run's internal work (trace-counter deltas).
    pub summary: SolveSummary,
    /// The configuration used (needed to re-price or simulate).
    pub config: DynamicConfig,
    /// Per-phase, per-atom placement caches built under [`DynamicConfig::sim`]
    /// during the candidate-layer pass. [`simulate_dynamic`] replays the plan
    /// through them (owner lookups only) whenever it is asked for the same
    /// options — the caches reproduce [`simulate`] exactly, so the report is
    /// unchanged, just cheaper.
    phase_caches: Vec<Arc<Vec<commsim::PlacementCache>>>,
    /// Lazily-built placement caches for every *other* `SimOptions` the
    /// standalone [`simulate_dynamic`] / [`simulate_static`] entry points
    /// are asked for: per-options per-phase per-atom caches of the dynamic
    /// plan and a per-options cache of the static solution's ADG. Shared
    /// across clones (the caches depend only on immutable analysis state),
    /// so repeated calls price by owner lookups instead of re-walking every
    /// position.
    sim_caches: Arc<Mutex<SimCacheStore>>,
}

/// Placement caches built on demand for simulation options other than the
/// retained [`DynamicConfig::sim`] set, keyed by the exact [`SimOptions`]
/// value (a small `Copy + Eq` struct — a linear scan beats hashing for the
/// handful of option sets a result ever sees).
#[derive(Debug, Default)]
struct SimCacheStore {
    /// Per-phase, per-atom caches of the dynamic plan's phases.
    dynamic: Vec<(SimOptions, Vec<Arc<Vec<commsim::PlacementCache>>>)>,
    /// Cache of the static solution's whole-program ADG.
    static_adg: Vec<(SimOptions, Arc<commsim::PlacementCache>)>,
}

impl DynamicPipelineResult {
    /// Model cost of the best *static* distribution
    /// ([`distrib::DistributionCost::total`] units — **not** comparable to
    /// [`DynamicDistribution::planned_cost`], which is simulated elements;
    /// compare against [`DynamicPipelineResult::static_planned_cost`]).
    pub fn static_model_cost(&self) -> f64 {
        self.static_result.best().cost.total()
    }

    /// Total number of distributable atoms across all phases.
    pub fn num_atoms(&self) -> usize {
        self.phases.iter().map(|p| p.atoms.len()).sum()
    }

    /// Per-phase, per-atom placement caches for `opts`: the caches retained
    /// from the candidate-layer pass when the options match
    /// [`DynamicConfig::sim`], otherwise built once per distinct options and
    /// memoised in the shared store. Either way [`simulate_dynamic`] prices
    /// by owner lookups instead of re-walking every position per call.
    fn phase_caches_for(&self, opts: SimOptions) -> Vec<Arc<Vec<commsim::PlacementCache>>> {
        if opts == self.config.sim && self.phase_caches.len() == self.phases.len() {
            return self.phase_caches.clone();
        }
        let mut store = self.sim_caches.lock().unwrap();
        if let Some((_, caches)) = store.dynamic.iter().find(|(o, _)| *o == opts) {
            return caches.clone();
        }
        let caches: Vec<Arc<Vec<commsim::PlacementCache>>> = self
            .phases
            .iter()
            .map(|phase| {
                Arc::new(
                    phase
                        .atoms
                        .iter()
                        .map(|atom| {
                            commsim::PlacementCache::new(&atom.adg, &atom.alignment.alignment, opts)
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        store.dynamic.push((opts, caches.clone()));
        caches
    }

    /// Placement cache of the static solution's ADG under `opts`, built
    /// once per distinct options and shared across clones.
    fn static_cache_for(&self, opts: SimOptions) -> Arc<commsim::PlacementCache> {
        let mut store = self.sim_caches.lock().unwrap();
        if let Some((_, cache)) = store.static_adg.iter().find(|(o, _)| *o == opts) {
            return cache.clone();
        }
        let cache = Arc::new(commsim::PlacementCache::new(
            &self.static_result.adg,
            &self.static_result.alignment.alignment,
            opts,
        ));
        store.static_adg.push((opts, cache.clone()));
        cache
    }
}

/// The port where an array rests in an atom: the sink side when the atom
/// assigns it, otherwise its source.
fn resting_port(adg: &Adg, array: ArrayId, prefer_sink: bool) -> Option<PortId> {
    let sink = || {
        adg.nodes().find_map(|(_, n)| match n.kind {
            NodeKind::Sink { array: a } if a == array => n.ports.first().copied(),
            _ => None,
        })
    };
    let source = || {
        adg.nodes().find_map(|(_, n)| match n.kind {
            NodeKind::Source { array: a } if a == array => n.output_ports().first().copied(),
            _ => None,
        })
    };
    if prefer_sink {
        sink().or_else(source)
    } else {
        source()
    }
}

/// The resting placement of `array` looking *backwards* from the end of
/// phase `b`: its resting port's alignment in the last atom (searching
/// right-to-left through phase `b` and every earlier phase) that references
/// the array, the covering template of that phase, and the phase index.
fn resting_before(
    phases: &[PhaseResult],
    b: usize,
    array: ArrayId,
) -> Option<(PortAlignment, Vec<i64>, usize)> {
    for (p, phase) in phases.iter().enumerate().take(b + 1).rev() {
        for atom in phase.atoms.iter().rev() {
            if atom.references(array) {
                let port = resting_port(&atom.adg, array, true)?;
                return Some((
                    atom.alignment.alignment.port(port).clone(),
                    phase.cover_extents().to_vec(),
                    p,
                ));
            }
        }
    }
    None
}

/// The resting placement of `array` at the start of phase `b`: its source
/// alignment in the first of the phase's atoms that references it, plus the
/// phase's covering template.
fn resting_at_start(phase: &PhaseResult, array: ArrayId) -> Option<(PortAlignment, Vec<i64>)> {
    phase
        .atoms
        .iter()
        .find(|atom| atom.references(array))
        .and_then(|atom| {
            let port = resting_port(&atom.adg, array, false)?;
            Some((
                atom.alignment.alignment.port(port).clone(),
                phase.cover_extents().to_vec(),
            ))
        })
}

/// Memoised exact pricing of per-array boundary moves: one owner-comparison
/// per distinct `(destination phase, array, source signature, destination
/// signature)` quadruple, shared between every DP state that asks and the
/// final step materialisation. (The source/destination alignments of a
/// given (phase, array) pair are fixed by the program structure; only the
/// signatures vary with the path.)
struct MovePricer<'a> {
    phases: &'a [PhaseResult],
    pool: &'a [Sig],
    program: &'a Program,
    sim: SimOptions,
    use_memo: bool,
    memo: HashMap<(usize, ArrayId, SigId, SigId), RedistCost>,
    /// Cells priced ahead of demand by [`MovePricer::prefill`] and not yet
    /// queried. The first `price` of such a cell books a **miss** (as the
    /// serial on-demand order would have) and clears the flag; later
    /// queries book hits — so `phases.pricer.{hits,misses}` are
    /// bitwise-identical whether or not prefill ran.
    fresh: HashSet<(usize, ArrayId, SigId, SigId)>,
    resting: HashMap<(usize, ArrayId), Option<RestingSpot>>,
}

/// Where an array rests entering a phase: its resting alignment, the cover
/// extents of the phase it rests in, and that phase's index.
type RestingSpot = (PortAlignment, Vec<i64>, usize);

impl<'a> MovePricer<'a> {
    fn new(
        phases: &'a [PhaseResult],
        pool: &'a [Sig],
        program: &'a Program,
        sim: SimOptions,
        use_memo: bool,
    ) -> Self {
        MovePricer {
            phases,
            pool,
            program,
            sim,
            use_memo,
            memo: HashMap::new(),
            fresh: HashSet::new(),
            resting: HashMap::new(),
        }
    }

    /// Where `array` rests entering phase `q` (memoised): alignment, cover
    /// extents and index of its last-use phase.
    fn resting_before_phase(
        &mut self,
        q: usize,
        array: ArrayId,
    ) -> Option<(PortAlignment, Vec<i64>, usize)> {
        let phases = self.phases;
        self.resting
            .entry((q, array))
            .or_insert_with(|| resting_before(phases, q - 1, array))
            .clone()
    }

    /// Exact price of moving `array` into phase `q` from resting signature
    /// `src` to the destination phase's signature `dst`.
    fn price(&mut self, q: usize, array: ArrayId, src: SigId, dst: SigId) -> RedistCost {
        if self.use_memo {
            if let Some(c) = self.memo.get(&(q, array, src, dst)) {
                if self.fresh.remove(&(q, array, src, dst)) {
                    // Prefilled, first query: serial on-demand pricing
                    // would have missed here.
                    trace::count("phases.pricer.misses", 1);
                } else {
                    trace::count("phases.pricer.hits", 1);
                }
                return *c;
            }
        }
        trace::count("phases.pricer.misses", 1);
        let cost = match (
            self.resting_before_phase(q, array),
            resting_at_start(&self.phases[q], array),
        ) {
            (Some((src_align, src_cover, _)), Some((dst_align, dst_cover))) => {
                let src_dist = instantiate(&self.pool[src], &src_cover);
                let dst_dist = instantiate(&self.pool[dst], &dst_cover);
                if src_align == dst_align && src_dist == dst_dist {
                    // Identical placements: a "stay put" transition (common
                    // in the DP's query set). The traversal's result is
                    // known — nothing moves — so book its counters and skip
                    // the enumeration.
                    identical_placement_traffic(&self.program.decl(array).extents, self.sim);
                    RedistCost::default()
                } else {
                    price_resting(
                        &self.program.decl(array).extents,
                        &RestingPlacement::new(&src_align, &src_dist),
                        &RestingPlacement::new(&dst_align, &dst_dist),
                        self.sim,
                    )
                }
            }
            _ => RedistCost::default(),
        };
        if self.use_memo {
            self.memo.insert((q, array, src, dst), cost);
        }
        cost
    }

    /// Price the missing cells of one DP layer's query set in parallel
    /// (each `(array, src, dst)` cell is an independent owner-comparison
    /// over shared read-only inputs). Resting spots are resolved serially
    /// first (they mutate the memo); the priced cells enter the memo
    /// flagged *fresh* so [`MovePricer::price`]'s hit/miss accounting
    /// stays bitwise-identical to serial on-demand pricing. Counters the
    /// pricing itself emits (`commsim.*`) cover exactly the cells a serial
    /// run would have priced, merged from the workers' deltas — identical
    /// totals in any worker count.
    fn prefill(&mut self, q: usize, cells: &[(ArrayId, SigId, SigId)]) {
        if !self.use_memo {
            return;
        }
        let todo: Vec<(ArrayId, SigId, SigId)> = cells
            .iter()
            .copied()
            .filter(|&(a, src, dst)| !self.memo.contains_key(&(q, a, src, dst)))
            .collect();
        if todo.is_empty() {
            return;
        }
        let jobs: Vec<_> = todo
            .iter()
            .map(|&(a, src, dst)| {
                let endpoints = match (
                    self.resting_before_phase(q, a),
                    resting_at_start(&self.phases[q], a),
                ) {
                    (Some((sa, sc, _)), Some((da, dc))) => Some((sa, sc, da, dc)),
                    _ => None,
                };
                (a, src, dst, endpoints)
            })
            .collect();
        let sigs = self.pool;
        let program = self.program;
        let sim = self.sim;
        let priced: Vec<RedistCost> = pool::map(jobs.len(), |i| {
            let (a, src, dst, ref endpoints) = jobs[i];
            match endpoints {
                Some((src_align, src_cover, dst_align, dst_cover)) => {
                    let src_dist = instantiate(&sigs[src], src_cover);
                    let dst_dist = instantiate(&sigs[dst], dst_cover);
                    if src_align == dst_align && src_dist == dst_dist {
                        identical_placement_traffic(&program.decl(a).extents, sim);
                        RedistCost::default()
                    } else {
                        price_resting(
                            &program.decl(a).extents,
                            &RestingPlacement::new(src_align, &src_dist),
                            &RestingPlacement::new(dst_align, &dst_dist),
                            sim,
                        )
                    }
                }
                None => RedistCost::default(),
            }
        });
        for (&(a, src, dst), cost) in todo.iter().zip(priced) {
            self.memo.insert((q, a, src, dst), cost);
            self.fresh.insert((q, a, src, dst));
        }
    }
}

impl DpPricer for MovePricer<'_> {
    fn price(&mut self, phase: usize, array: ArrayId, src: SigId, dst: SigId) -> f64 {
        MovePricer::price(self, phase, array, src, dst).elements()
    }

    fn prefill(&mut self, phase: usize, cells: &[(ArrayId, SigId, SigId)]) {
        MovePricer::prefill(self, phase, cells);
    }

    fn wants_prefill(&self) -> bool {
        // Worker-count independent on purpose: the structured DP path (and
        // the pruning decisions it feeds) must be identical whether
        // `pool::map` runs the prefill inline or across workers.
        self.use_memo
    }

    fn move_bound(&mut self, array: ArrayId) -> f64 {
        // Every move's element traffic is bounded by the array's total
        // element count: `redistribution_traffic` attributes each sampled
        // element's scale to either the point-to-point or the broadcast
        // bucket, and the scales sum to the extents product.
        self.program
            .decl(array)
            .extents
            .iter()
            .product::<i64>()
            .max(1) as f64
    }

    fn note_repeat_queries(&mut self, n: u64) {
        // The structured DP path asks once per distinct cell and reports the
        // duplicates it collapsed; booking them as hits keeps
        // `phases.pricer.{hits,misses}` bitwise-identical to per-query
        // pricing.
        trace::count("phases.pricer.hits", n);
    }
}

/// Build the [`PhaseResult`]s for the given atom ranges: group the atoms,
/// search the signature space **once per phase** over all its atoms on the
/// phase's covering template (shared enumeration — no per-atom re-search).
/// The reports are then re-priced over the cross-phase pool by
/// [`price_pool`].
fn build_phases(
    mut atoms: Vec<AtomAnalysis>,
    atom_ranges: &[(usize, usize)],
    solve_cfg: &SolveConfig,
) -> Vec<PhaseResult> {
    let mut phases: Vec<PhaseResult> = Vec::with_capacity(atom_ranges.len());
    for &(lo, hi) in atom_ranges.iter().rev() {
        let phase_atoms: Vec<AtomAnalysis> = atoms.split_off(lo);
        let range = (
            phase_atoms.first().map_or(0, |a| a.stmt_index),
            phase_atoms.last().map_or(0, |a| a.stmt_index + 1),
        );
        let (atom_templates, report) = {
            let models: Vec<DistributionCostModel<'_>> = phase_atoms
                .iter()
                .map(|a| {
                    DistributionCostModel::with_max_points(
                        &a.adg,
                        &a.alignment.alignment,
                        solve_cfg.params.max_points_per_edge,
                    )
                })
                .collect();
            let atom_templates: Vec<Vec<i64>> =
                models.iter().map(|m| m.template_extents()).collect();
            let cover = cover_of(&atom_templates);
            let report = solve_distribution_pooled(&models, &cover, solve_cfg);
            (atom_templates, report)
        };
        phases.push(PhaseResult {
            atom_range: (lo, hi),
            range,
            atoms: phase_atoms,
            atom_templates,
            report,
        });
    }
    phases.reverse();
    phases
}

/// The elementwise-max cover of a set of template extents.
fn cover_of(templates: &[Vec<i64>]) -> Vec<i64> {
    let rank = templates.iter().map(Vec::len).max().unwrap_or(1).max(1);
    let mut cover = vec![1i64; rank];
    for t in templates {
        for (i, &e) in t.iter().enumerate() {
            cover[i] = cover[i].max(e);
        }
    }
    cover
}

/// Re-price every phase's report over the shared signature pool: each pool
/// signature is instantiated on the phase's covering template and priced by
/// summing the phase's per-atom model costs. Rankings use the same ordering
/// key as `solve_distribution`, so a single-phase program's `best()`
/// matches the static choice.
fn price_pool(phases: &mut [PhaseResult], pool: &[Sig], solve_cfg: &SolveConfig) {
    let params = solve_cfg.params;
    for phase in phases.iter_mut() {
        let ranked = {
            let models: Vec<DistributionCostModel<'_>> = phase
                .atoms
                .iter()
                .map(|a| {
                    DistributionCostModel::with_max_points(
                        &a.adg,
                        &a.alignment.alignment,
                        params.max_points_per_edge,
                    )
                })
                .collect();
            let cover = phase.report.template_extents.clone();
            let mut ranked: Vec<RankedDistribution> = pool
                .iter()
                .map(|sig| {
                    let dist = instantiate(sig, &cover);
                    let cost = models
                        .iter()
                        .map(|m| m.cost(&dist, &params))
                        .fold(DistributionCost::default(), |a, b| a.plus(&b));
                    RankedDistribution {
                        distribution: dist,
                        cost,
                    }
                })
                .collect();
            sort_ranked(&mut ranked);
            ranked
        };
        phase.report.ranked = ranked;
    }
}

/// Rank candidates cheapest-first with the same ordering key as
/// `solve_distribution` (so a single-phase program's `best()` matches the
/// static choice), deduplicating identical instances.
fn sort_ranked(ranked: &mut Vec<RankedDistribution>) {
    ranked.sort_by_cached_key(|r| {
        let grid = r.distribution.grid();
        (
            r.cost.total().max(0.0).to_bits(),
            grid.iter().copied().max().unwrap_or(1),
            grid,
            r.distribution.to_string(),
        )
    });
    ranked.dedup_by(|a, b| a.distribution == b.distribution);
}

/// The shared signature pool: every phase's top-ranked candidates, dedup'd
/// in first-seen order.
fn build_pool(phases: &[PhaseResult]) -> Vec<Sig> {
    let mut pool: Vec<Sig> = Vec::new();
    for phase in phases {
        for r in &phase.report.ranked {
            let sig = sig_of(&r.distribution);
            if !pool.contains(&sig) {
                pool.push(sig);
            }
        }
    }
    pool
}

/// Arrays priced at each boundary: next use is the following phase, and
/// referenced somewhere before.
fn build_live(
    program: &Program,
    phase_refs: &[BTreeSet<ArrayId>],
) -> Vec<Vec<(ArrayId, String, Vec<i64>)>> {
    (0..phase_refs.len().saturating_sub(1))
        .map(|b| {
            let before: BTreeSet<ArrayId> = phase_refs[..=b]
                .iter()
                .flat_map(|s| s.iter().copied())
                .collect();
            phase_refs[b + 1]
                .iter()
                .filter(|a| before.contains(a))
                .map(|&a| {
                    let decl = program.decl(a);
                    (a, decl.name.clone(), decl.extents.clone())
                })
                .collect()
        })
        .collect()
}

/// Candidate layers from the pool-priced reports: the `cap` cheapest by
/// model cost, plus every phase's favourite (and any `forced` signatures —
/// used after coalescing to keep the already-chosen signature in its
/// layer). `costs` are **in-phase simulated elements** under `sim` — the
/// same accounting [`simulate_dynamic`] replays, via the per-atom placement
/// caches — so the DP minimises end-to-end simulated traffic.
fn build_layers(
    phases: &[PhaseResult],
    pool: &[Sig],
    cap: usize,
    forced: &[Sig],
    sim: SimOptions,
) -> (Vec<PhaseCandidates>, Vec<Arc<Vec<commsim::PlacementCache>>>) {
    let retained: Vec<Sig> = phases
        .iter()
        .filter_map(|p| p.report.ranked.first())
        .map(|r| sig_of(&r.distribution))
        .chain(forced.iter().cloned())
        .collect();
    // Each phase's layer is independent (cache builds + candidate pricing
    // over read-only inputs), so the phases fan out over the pool; results
    // land in phase order and worker counter deltas are absorbed, keeping
    // every `commsim.*` total identical to a serial build.
    let built = pool::map(phases.len(), |i| {
        layer_from_report(&phases[i], pool, cap, &retained, sim)
    });
    built
        .into_iter()
        .map(|(layer, caches)| (layer, Arc::new(caches)))
        .unzip()
}

/// One phase's candidate layer: the `cap` cheapest of its pool-priced
/// ranking plus every `retained` signature, with in-phase simulated-element
/// costs. Placements depend on the alignment, not the candidate, so the
/// per-atom placement caches are built once and every candidate is priced
/// by owner lookups alone ([`commsim::PlacementCache`] reproduces
/// `simulate()` exactly, so these costs equal the final plan pricing).
fn layer_from_report(
    p: &PhaseResult,
    pool: &[Sig],
    cap: usize,
    retained: &[Sig],
    sim: SimOptions,
) -> (PhaseCandidates, Vec<commsim::PlacementCache>) {
    let sig_id = |sig: &Sig| -> SigId {
        pool.iter()
            .position(|s| s == sig)
            .expect("layer signature must come from the pool")
    };
    let keep: Vec<&RankedDistribution> = p
        .report
        .ranked
        .iter()
        .enumerate()
        .filter(|(i, r)| *i < cap || retained.contains(&sig_of(&r.distribution)))
        .map(|(_, r)| r)
        .collect();
    let caches: Vec<commsim::PlacementCache> = p
        .atoms
        .iter()
        .map(|a| commsim::PlacementCache::new(&a.adg, &a.alignment.alignment, sim))
        .collect();
    let layer = PhaseCandidates {
        costs: keep
            .iter()
            .map(|r| {
                caches
                    .iter()
                    .map(|c| c.total_elements(&r.distribution))
                    .sum()
            })
            .collect(),
        sigs: keep
            .iter()
            .map(|r| sig_id(&sig_of(&r.distribution)))
            .collect(),
        dists: keep.iter().map(|r| r.distribution.clone()).collect(),
    };
    // The caches are handed back so `simulate_dynamic` can replay the
    // chosen plan by owner lookups instead of re-walking every position.
    (layer, caches)
}

/// Materialise the per-array redistribution steps of the chosen plan: at
/// each boundary, every live array priced exactly from the layout of the
/// phase that actually last used it.
fn build_steps(
    phases: &[PhaseResult],
    live: &[Vec<(ArrayId, String, Vec<i64>)>],
    chosen_sigs: &[SigId],
    pricer: &mut MovePricer<'_>,
) -> Vec<Vec<RedistStep>> {
    (0..phases.len().saturating_sub(1))
        .map(|b| {
            live[b]
                .iter()
                .filter_map(|(array, name, extents)| {
                    let (_, _, src_phase) = pricer.resting_before_phase(b + 1, *array)?;
                    let cost =
                        pricer.price(b + 1, *array, chosen_sigs[src_phase], chosen_sigs[b + 1]);
                    Some(RedistStep {
                        array: *array,
                        name: name.clone(),
                        extents: extents.clone(),
                        src_phase,
                        cost,
                    })
                })
                .collect()
        })
        .collect()
}

/// Everything the layout DP consumes, computed by stages 2+3 of the
/// pipeline from the per-atom analyses: the pooled per-phase candidate
/// reports, the shared signature pool, per-phase reference sets, the
/// simulated candidate layers, and the per-atom placement caches retained
/// from the layer pass.
struct DpInputs {
    phases: Vec<PhaseResult>,
    sig_pool: Vec<Sig>,
    phase_refs: Vec<BTreeSet<ArrayId>>,
    layers: Vec<PhaseCandidates>,
    phase_caches: Vec<Arc<Vec<commsim::PlacementCache>>>,
}

/// Boundaries from the per-atom signatures, then one signature-space search
/// per phase (shared enumeration over all the phase's atoms), the
/// cross-phase pool with pool-priced reports, and the candidate layers
/// (model-capped, favourites retained, in-phase costs simulated).
fn build_dp_inputs(atoms: Vec<AtomAnalysis>, nprocs: usize, config: &DynamicConfig) -> DpInputs {
    let boundaries = match &config.boundaries {
        Some(b) => b.clone(),
        None => detect_boundaries(
            &atoms,
            &SegmentationConfig {
                alignment: config.alignment,
                neutral_volume: config.neutral_volume,
            },
        ),
    };
    let atom_ranges = align_ir::ast::cut_ranges(atoms.len(), &boundaries);
    let solve_cfg = config.solve_config(nprocs);
    let (phases, sig_pool) = {
        let _span = trace::span("phases.search");
        let mut phases = build_phases(atoms, &atom_ranges, &solve_cfg);
        let sig_pool = build_pool(&phases);
        price_pool(&mut phases, &sig_pool, &solve_cfg);
        (phases, sig_pool)
    };
    let phase_refs: Vec<BTreeSet<ArrayId>> = phases.iter().map(|p| p.referenced()).collect();
    let cap = config.max_candidates_per_phase.max(1);
    let (layers, phase_caches) = {
        let _span = trace::span("phases.layers");
        build_layers(&phases, &sig_pool, cap, &[], config.sim)
    };
    DpInputs {
        phases,
        sig_pool,
        phase_refs,
        layers,
        phase_caches,
    }
}

/// A self-contained layout-DP instance over **real pipeline state**: the
/// candidate layers, reference sets and pooled phase analyses of a program,
/// detached from the rest of the pipeline so the DP can be solved
/// repeatedly under different pruning policies against the same inputs
/// (the `layout_dp` microbench and the pruned-vs-exhaustive property tests
/// drive this). Each [`LayoutDpProblem::solve`] builds a fresh `MovePricer`
/// — same memo behaviour, same counters — so runs are independent.
pub struct LayoutDpProblem {
    program: Program,
    config: DynamicConfig,
    phases: Vec<PhaseResult>,
    sig_pool: Vec<Sig>,
    phase_refs: Vec<BTreeSet<ArrayId>>,
    layers: Vec<PhaseCandidates>,
}

impl LayoutDpProblem {
    /// The candidate layers the DP chooses from.
    pub fn layers(&self) -> &[PhaseCandidates] {
        &self.layers
    }

    /// Solve the DP over the captured layers with a fresh exact pricer.
    pub fn solve(
        &self,
        switch_margin: f64,
        pruning: DpPruning,
    ) -> Result<LayoutDpPlan, LayoutDpError> {
        let mut pricer = MovePricer::new(
            &self.phases,
            &self.sig_pool,
            &self.program,
            self.config.sim,
            self.config.pricer_memo,
        );
        solve_layout_dp_with(
            &self.layers,
            &self.phase_refs,
            switch_margin,
            &mut pricer,
            pruning,
        )
    }
}

/// Capture the layout-DP instance of `program` at `nprocs` — the exact
/// layers and reference sets [`align_then_distribute_dynamic`] would hand
/// [`solve_layout_dp`] — without solving it.
pub fn layout_dp_problem(
    program: &Program,
    nprocs: usize,
    config: &DynamicConfig,
) -> LayoutDpProblem {
    let atoms = analyze_atoms(program, &config.alignment);
    let DpInputs {
        phases,
        sig_pool,
        phase_refs,
        layers,
        phase_caches: _,
    } = build_dp_inputs(atoms, nprocs, config);
    LayoutDpProblem {
        program: program.clone(),
        config: config.clone(),
        phases,
        sig_pool,
        phase_refs,
        layers,
    }
}

/// Run the complete three-stage analysis: fission into atoms, align each
/// once, detect candidate boundaries, search the signature space once per
/// phase, solve the per-array layout-state DP over the shared pool, and
/// coalesce the boundaries the chosen path does not use. The static
/// whole-program solution is computed alongside for comparison, simulated
/// under the same options as the plan pricing.
///
/// ```
/// use phases::{align_then_distribute_dynamic, simulate_dynamic, DynamicConfig};
///
/// // Row-work then column-work over the same array: no static distribution
/// // is good everywhere, so the plan flips layouts at the boundary.
/// let program = align_ir::programs::fft_like(16, 8);
/// let result = align_then_distribute_dynamic(&program, 4, &DynamicConfig::default());
///
/// assert_eq!(result.phases.len(), 2);
/// assert!(result.dynamic.redistributes());
/// // The priced plan IS the simulated plan: same accounting, same options.
/// let replay = simulate_dynamic(&result, result.config.sim);
/// assert_eq!(result.dynamic.planned_cost, replay.total_elements());
/// ```
pub fn align_then_distribute_dynamic(
    program: &Program,
    nprocs: usize,
    config: &DynamicConfig,
) -> DynamicPipelineResult {
    try_align_then_distribute_dynamic(program, nprocs, config)
        .expect("layout DP rejected the phase structure")
}

/// [`align_then_distribute_dynamic`] that reports a degenerate phase
/// structure (no phases, a phase with no candidates, a layer/reference
/// mismatch) as a typed [`LayoutDpError`] instead of panicking — the entry
/// point for server-bound callers that must answer every request.
pub fn try_align_then_distribute_dynamic(
    program: &Program,
    nprocs: usize,
    config: &DynamicConfig,
) -> Result<DynamicPipelineResult, LayoutDpError> {
    let _span = trace::span("phases.pipeline");
    trace::count("phases.pipeline_runs", 1);
    let counters_at_entry = trace::CounterSnapshot::now();
    let spans_at_entry = trace::span_count();

    // Stage 0+1: one analysis per atom — shared with the static baseline
    // below, which for a single-atom program IS the whole-program alignment
    // (the atom's standalone program equals the program), so the baseline
    // reuses it instead of aligning a second time.
    let atoms = analyze_atoms(program, &config.alignment);
    let static_seed =
        (atoms.len() == 1).then(|| (atoms[0].adg.clone(), atoms[0].alignment.clone()));

    // The rest of the dynamic analysis and the static baseline share
    // nothing but the atom set, so they overlap on the pool when
    // parallelism is available (the baseline's counter delta is absorbed,
    // keeping totals identical to the serial order the fallback still runs
    // in).
    let (dynamic_side, (static_result, static_planned_cost)) = pool::join(
        || {
            // Stages 2+3: boundaries, per-phase signature search, shared
            // pool, candidate layers — then the per-array layout-state DP.
            let solve_cfg = config.solve_config(nprocs);
            let DpInputs {
                phases,
                sig_pool,
                phase_refs,
                layers,
                phase_caches,
            } = build_dp_inputs(atoms, nprocs, config);
            let live = build_live(program, &phase_refs);
            let cap = config.max_candidates_per_phase.max(1);
            let mut pricer =
                MovePricer::new(&phases, &sig_pool, program, config.sim, config.pricer_memo);
            let plan = solve_layout_dp(&layers, &phase_refs, config.switch_margin, &mut pricer)?;
            let peak_dp_layer_width = plan.states_per_layer.iter().copied().max().unwrap_or(0);
            let chosen_sigs: Vec<SigId> = plan
                .chosen
                .iter()
                .zip(&layers)
                .map(|(&k, l)| l.sigs[k])
                .collect();
            let steps = build_steps(&phases, &live, &chosen_sigs, &mut pricer);
            drop(pricer);

            // DAG-driven boundary selection: coalesce every detected
            // boundary the chosen path leaves unused (same signature and
            // same covering template on both sides, no array paying
            // anything — a cost-neutral merge by construction). The DP
            // decided which seams are real; the rest disappear from the
            // plan.
            let (phases, live, layers, phase_caches, chosen_sigs, chosen, steps) =
                if config.coalesce_phases {
                    let _span = trace::span("phases.coalesce");
                    coalesce(
                        phases,
                        live,
                        layers,
                        phase_caches,
                        chosen_sigs,
                        plan.chosen,
                        steps,
                        &sig_pool,
                        &solve_cfg,
                        program,
                        cap,
                        config.sim,
                        config.pricer_memo,
                    )
                } else {
                    (
                        phases,
                        live,
                        layers,
                        phase_caches,
                        chosen_sigs,
                        plan.chosen,
                        steps,
                    )
                };

            // Exact plan pricing on the final structure: in-phase simulated
            // traffic plus every per-array step — the same accounting
            // `simulate_dynamic` replays, so `planned_cost` IS the
            // simulated plan cost.
            let per_phase: Vec<ProgramDistribution> = chosen_sigs
                .iter()
                .zip(&phases)
                .map(|(&s, p)| instantiate(&sig_pool[s], p.cover_extents()))
                .collect();
            let planned_cost: f64 = chosen
                .iter()
                .zip(&layers)
                .map(|(&k, l)| l.costs[k])
                .sum::<f64>()
                + steps
                    .iter()
                    .flatten()
                    .map(|s| s.cost.elements())
                    .sum::<f64>();
            let dynamic = DynamicDistribution {
                chosen,
                per_phase,
                steps,
                planned_cost,
            };
            Ok((
                phases,
                live,
                sig_pool,
                layers,
                phase_caches,
                dynamic,
                peak_dp_layer_width,
            ))
        },
        || {
            // The static baseline over the whole program, simulated under
            // the same options the plan is priced with. A single-atom
            // program's baseline alignment is the atom's own (already
            // computed above) — only the distribution search runs here.
            let _span = trace::span("phases.static_baseline");
            let full_config = FullPipelineConfig {
                alignment: config.alignment,
                distribution: config.distribution.clone(),
            };
            let static_result = match static_seed {
                Some((adg, alignment)) => {
                    let distribution =
                        distribute_alignment(&adg, &alignment.alignment, nprocs, &full_config);
                    FullPipelineResult {
                        adg,
                        alignment,
                        distribution,
                    }
                }
                None => align_then_distribute(program, nprocs, &full_config),
            };
            let static_planned_cost = simulate(
                &static_result.adg,
                &static_result.alignment.alignment,
                &static_result.best().distribution,
                config.sim,
            )
            .total_elements();
            (static_result, static_planned_cost)
        },
    );

    let (phases, live, sig_pool, layers, phase_caches, dynamic, peak_dp_layer_width) =
        dynamic_side?;

    let summary = SolveSummary::from_run(
        &counters_at_entry,
        trace::span_count() - spans_at_entry,
        peak_dp_layer_width,
    );

    Ok(DynamicPipelineResult {
        nprocs,
        phases,
        live,
        pool: sig_pool,
        layers,
        dynamic,
        static_result,
        static_planned_cost,
        summary,
        config: config.clone(),
        phase_caches,
        sim_caches: Arc::new(Mutex::new(SimCacheStore::default())),
    })
}

/// Merge adjacent phases across boundaries the chosen path does not use:
/// identical chosen signature on both sides, identical covering template,
/// and every step free. Requiring equal covers makes the merge exactly
/// cost-neutral — the candidate instances (and therefore every in-phase
/// simulation) are unchanged, so the merged plan prices identically to the
/// plan the DP selected; a boundary between phases with *different* covers
/// is kept even when nothing moves, because merging it would re-price the
/// smaller phase's atoms on a different block structure.
///
/// Only the merged groups are rebuilt: their reports are the signature-wise
/// sums of the members' pool-priced rankings (same cover ⇒ same candidate
/// instances ⇒ model costs add; no re-search, no new cost models), and
/// their layers are re-simulated with the chosen signature forced in.
/// Untouched phases keep their reports, layers and chosen indices.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn coalesce(
    phases: Vec<PhaseResult>,
    live: Vec<Vec<(ArrayId, String, Vec<i64>)>>,
    layers: Vec<PhaseCandidates>,
    phase_caches: Vec<Arc<Vec<commsim::PlacementCache>>>,
    chosen_sigs: Vec<SigId>,
    chosen: Vec<usize>,
    steps: Vec<Vec<RedistStep>>,
    pool: &[Sig],
    solve_cfg: &SolveConfig,
    program: &Program,
    cap: usize,
    sim: SimOptions,
    pricer_memo: bool,
) -> (
    Vec<PhaseResult>,
    Vec<Vec<(ArrayId, String, Vec<i64>)>>,
    Vec<PhaseCandidates>,
    Vec<Arc<Vec<commsim::PlacementCache>>>,
    Vec<SigId>,
    Vec<usize>,
    Vec<Vec<RedistStep>>,
) {
    // Group consecutive phases separated only by unused boundaries.
    let mut groups: Vec<Vec<usize>> = vec![vec![0]];
    for b in 0..phases.len().saturating_sub(1) {
        let unused = chosen_sigs[b] == chosen_sigs[b + 1]
            && phases[b].cover_extents() == phases[b + 1].cover_extents()
            && steps[b].iter().all(|s| s.cost.is_zero());
        if unused {
            groups.last_mut().unwrap().push(b + 1);
        } else {
            groups.push(vec![b + 1]);
        }
    }
    trace::count(
        "phases.seams_coalesced",
        (phases.len() - groups.len()) as u64,
    );
    if groups.len() == phases.len() {
        return (
            phases,
            live,
            layers,
            phase_caches,
            chosen_sigs,
            chosen,
            steps,
        );
    }

    let mut phases_iter = phases.into_iter();
    let mut layers_iter = layers.into_iter();
    let mut caches_iter = phase_caches.into_iter();
    let mut new_phases: Vec<PhaseResult> = Vec::with_capacity(groups.len());
    let mut new_layers: Vec<PhaseCandidates> = Vec::with_capacity(groups.len());
    let mut new_caches: Vec<Arc<Vec<commsim::PlacementCache>>> = Vec::with_capacity(groups.len());
    let mut new_sigs: Vec<SigId> = Vec::with_capacity(groups.len());
    let mut new_chosen: Vec<usize> = Vec::with_capacity(groups.len());
    for group in &groups {
        let members: Vec<PhaseResult> = phases_iter.by_ref().take(group.len()).collect();
        let member_layers: Vec<PhaseCandidates> = layers_iter.by_ref().take(group.len()).collect();
        let member_caches: Vec<Arc<Vec<commsim::PlacementCache>>> =
            caches_iter.by_ref().take(group.len()).collect();
        let sig = chosen_sigs[group[0]];
        new_sigs.push(sig);
        if members.len() == 1 {
            new_phases.push(members.into_iter().next().unwrap());
            new_layers.push(member_layers.into_iter().next().unwrap());
            new_caches.push(member_caches.into_iter().next().unwrap());
            new_chosen.push(chosen[group[0]]);
            continue;
        }
        let merged = merge_phase_group(members, solve_cfg.nprocs);
        let (layer, caches) = layer_from_report(&merged, pool, cap, &[pool[sig].clone()], sim);
        new_chosen.push(
            layer
                .sigs
                .iter()
                .position(|&x| x == sig)
                .expect("chosen signature forced into its layer"),
        );
        new_layers.push(layer);
        new_caches.push(Arc::new(caches));
        new_phases.push(merged);
    }

    let phase_refs: Vec<BTreeSet<ArrayId>> = new_phases.iter().map(|p| p.referenced()).collect();
    let live = build_live(program, &phase_refs);
    let mut pricer = MovePricer::new(&new_phases, pool, program, sim, pricer_memo);
    let steps = build_steps(&new_phases, &live, &new_sigs, &mut pricer);
    drop(pricer);
    (
        new_phases, live, new_layers, new_caches, new_sigs, new_chosen, steps,
    )
}

/// Merge a run of phases that share one covering template into a single
/// [`PhaseResult`]. The members' pool-priced rankings are over identical
/// candidate instances (same cover), so the merged ranking is their
/// signature-wise sum — no re-search and no new cost models.
fn merge_phase_group(members: Vec<PhaseResult>, nprocs: usize) -> PhaseResult {
    let atom_range = (
        members.first().unwrap().atom_range.0,
        members.last().unwrap().atom_range.1,
    );
    let range = (
        members.iter().map(|p| p.range.0).min().unwrap(),
        members.iter().map(|p| p.range.1).max().unwrap(),
    );
    let cover = members[0].report.template_extents.clone();
    let mut summed: Vec<(Sig, DistributionCost)> = members[0]
        .report
        .ranked
        .iter()
        .map(|r| (sig_of(&r.distribution), r.cost))
        .collect();
    for m in &members[1..] {
        for r in &m.report.ranked {
            let sig = sig_of(&r.distribution);
            if let Some(entry) = summed.iter_mut().find(|(s, _)| *s == sig) {
                entry.1 = entry.1.plus(&r.cost);
            }
        }
    }
    let mut ranked: Vec<RankedDistribution> = summed
        .into_iter()
        .map(|(sig, cost)| RankedDistribution {
            distribution: instantiate(&sig, &cover),
            cost,
        })
        .collect();
    sort_ranked(&mut ranked);
    let candidates_evaluated = members.iter().map(|m| m.report.candidates_evaluated).sum();
    let exhaustive = members.iter().all(|m| m.report.exhaustive);
    let mut atoms: Vec<AtomAnalysis> = Vec::new();
    let mut atom_templates: Vec<Vec<i64>> = Vec::new();
    for p in members {
        atoms.extend(p.atoms);
        atom_templates.extend(p.atom_templates);
    }
    PhaseResult {
        atom_range,
        range,
        atoms,
        atom_templates,
        report: DistributionReport {
            nprocs,
            template_extents: cover,
            ranked,
            candidates_evaluated,
            exhaustive,
        },
    }
}

/// Simulated traffic of a dynamic plan, phase by phase plus the per-array
/// redistribution steps — the end-to-end validation of the plan. Under the
/// options the plan was priced with ([`DynamicConfig::sim`]), the total
/// equals [`DynamicDistribution::planned_cost`]; under [`SimOptions::exact`]
/// both are exact.
#[derive(Debug, Clone)]
pub struct DynamicSimReport {
    /// Simulated element traffic of each phase under its chosen
    /// distribution (each phase's atoms summed on the phase's covering
    /// template; `per_edge` entries are per-atom edge ids).
    pub per_phase: Vec<SimReport>,
    /// Element traffic of each boundary's per-array redistribution steps.
    pub redist_elements: Vec<f64>,
}

impl DynamicSimReport {
    /// Total elements moved: in-phase traffic plus redistribution.
    pub fn total_elements(&self) -> f64 {
        self.per_phase
            .iter()
            .map(SimReport::total_elements)
            .sum::<f64>()
            + self.redist_elements.iter().sum::<f64>()
    }
}

/// Play the chosen dynamic distribution through the communication
/// simulator: each atom's ADG under its phase's chosen distribution on the
/// phase's covering template, plus the exact owner-comparison cost of every
/// per-array redistribution step — each array priced from the layout of the
/// phase that *actually last used it*. This is the same accounting the DP
/// priced the plan with, so with `opts == result.config.sim` the report's
/// total equals `result.dynamic.planned_cost`.
pub fn simulate_dynamic(result: &DynamicPipelineResult, opts: SimOptions) -> DynamicSimReport {
    let chosen_sigs: Vec<Sig> = result.dynamic.per_phase.iter().map(sig_of).collect();
    // Replay each phase through per-atom placement caches — the ones
    // retained from the candidate-layer pass when `opts` matches the plan's
    // own options, otherwise built once per distinct options and shared
    // across calls. The caches reproduce `simulate` exactly (same sampling,
    // same traffic), priced by owner-table lookups instead of re-walking
    // every position per call.
    let phase_caches = result.phase_caches_for(opts);
    let per_phase: Vec<SimReport> = result
        .phases
        .iter()
        .zip(&chosen_sigs)
        .enumerate()
        .map(|(i, (phase, sig))| {
            let dist = instantiate(sig, phase.cover_extents());
            let mut merged = SimReport {
                processors: result.nprocs,
                ..SimReport::default()
            };
            for cache in phase_caches[i].iter() {
                merged.merge(cache.price(&dist));
            }
            merged
        })
        .collect();
    let redist_elements: Vec<f64> = (0..result.phases.len().saturating_sub(1))
        .map(|b| {
            result.live[b]
                .iter()
                .filter_map(|(array, _, extents)| {
                    let (src_align, src_cover, src_phase) =
                        resting_before(&result.phases, b, *array)?;
                    let (dst_align, dst_cover) = resting_at_start(&result.phases[b + 1], *array)?;
                    let src_dist = instantiate(&chosen_sigs[src_phase], &src_cover);
                    let dst_dist = instantiate(&chosen_sigs[b + 1], &dst_cover);
                    let spec = commsim::RedistSpec {
                        extents,
                        src: RestingPlacement::new(&src_align, &src_dist),
                        dst: RestingPlacement::new(&dst_align, &dst_dist),
                    };
                    Some(
                        commsim::simulate_redistribution(std::slice::from_ref(&spec), opts)
                            .elements(),
                    )
                })
                .sum()
        })
        .collect();
    DynamicSimReport {
        per_phase,
        redist_elements,
    }
}

/// Simulated element traffic of the best *static* distribution over the
/// whole program — the baseline [`simulate_dynamic`] is compared against.
pub fn simulate_static(result: &DynamicPipelineResult, opts: SimOptions) -> SimReport {
    // Every call prices through a lazily-built placement cache of the
    // static ADG — one per distinct `SimOptions`, shared across clones —
    // identical traffic to `simulate`, by owner lookups instead of
    // re-walking every position per call.
    result
        .static_cache_for(opts)
        .price(&result.static_result.best().distribution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_ir::programs;

    #[test]
    fn fft_like_plans_two_phases_and_redistributes() {
        let result = align_then_distribute_dynamic(
            &programs::fft_like(32, 40),
            8,
            &DynamicConfig::default(),
        );
        assert_eq!(result.phases.len(), 2, "detected phases");
        assert_eq!(result.live.len(), 1);
        assert_eq!(result.live[0].len(), 1, "A is live across the boundary");
        let d = &result.dynamic;
        assert!(d.redistributes(), "{d}");
        // Each phase serialises its traffic axis.
        assert_eq!(d.per_phase[0].grid(), vec![8, 1], "{d}");
        assert_eq!(d.per_phase[1].grid(), vec![1, 8], "{d}");
        assert!(d.planned_cost < result.static_planned_cost, "{d}");
    }

    #[test]
    fn standalone_simulation_prices_through_caches_unchanged() {
        // The standalone `simulate_dynamic` / `simulate_static` entry
        // points replay through placement caches — the set retained from
        // the candidate-layer pass for the plan's own options, lazily-built
        // memoised ones for any other options. The reports must equal a
        // direct cache-free `commsim::simulate` of the same placements, and
        // repeat calls must price through the existing caches without
        // building new ones.
        let result = align_then_distribute_dynamic(
            &programs::fft_like(32, 40),
            8,
            &DynamicConfig::default(),
        );
        for opts in [result.config.sim, SimOptions::sampled(64, 256)] {
            let report = simulate_dynamic(&result, opts);
            let chosen_sigs: Vec<Sig> = result.dynamic.per_phase.iter().map(sig_of).collect();
            for (i, (phase, sig)) in result.phases.iter().zip(&chosen_sigs).enumerate() {
                let dist = instantiate(sig, phase.cover_extents());
                let mut direct = SimReport {
                    processors: result.nprocs,
                    ..SimReport::default()
                };
                for atom in &phase.atoms {
                    direct.merge(simulate(&atom.adg, &atom.alignment.alignment, &dist, opts));
                }
                assert_eq!(
                    format!("{:?}", report.per_phase[i]),
                    format!("{direct:?}"),
                    "phase {i} cached replay diverged from direct simulation"
                );
            }
            let static_report = simulate_static(&result, opts);
            let static_direct = simulate(
                &result.static_result.adg,
                &result.static_result.alignment.alignment,
                &result.static_result.best().distribution,
                opts,
            );
            assert_eq!(
                format!("{static_report:?}"),
                format!("{static_direct:?}"),
                "static cached replay diverged from direct simulation"
            );

            let builds = trace::counter("commsim.cache.builds");
            let again = simulate_dynamic(&result, opts);
            let _ = simulate_static(&result, opts);
            assert_eq!(
                trace::counter("commsim.cache.builds"),
                builds,
                "repeat calls rebuilt placement caches"
            );
            assert_eq!(
                format!("{:?}", again.per_phase),
                format!("{:?}", report.per_phase),
                "repeat cached replay diverged"
            );
        }
    }

    #[test]
    fn explicit_boundaries_override_detection() {
        let mut cfg = DynamicConfig::default();
        cfg.coalesce_phases = false;
        cfg.boundaries = Some(vec![]);
        let one = align_then_distribute_dynamic(&programs::fft_like(16, 4), 4, &cfg);
        assert_eq!(one.phases.len(), 1);
        assert!(!one.dynamic.redistributes());
        cfg.boundaries = Some(vec![1]);
        let two = align_then_distribute_dynamic(&programs::fft_like(16, 4), 4, &cfg);
        assert_eq!(two.phases.len(), 2);
    }

    #[test]
    fn single_phase_dynamic_matches_static_choice() {
        // A program with one topology: the dynamic plan degenerates to a
        // single phase with no redistribution steps, and its simulated cost
        // is no worse than the static solution's.
        let result = align_then_distribute_dynamic(
            &programs::stencil2d(24, 3),
            4,
            &DynamicConfig::default(),
        );
        assert_eq!(result.phases.len(), 1);
        assert!(result.dynamic.steps.is_empty());
        assert!(
            result.dynamic.planned_cost <= result.static_planned_cost + 1e-9,
            "dynamic {} vs static {}",
            result.dynamic.planned_cost,
            result.static_planned_cost
        );
    }

    #[test]
    fn multigrid_pipeline_runs_end_to_end() {
        let result = align_then_distribute_dynamic(
            &programs::multigrid_vcycle(16, 2, 2),
            4,
            &DynamicConfig::default(),
        );
        assert!(!result.phases.is_empty());
        let sim = simulate_dynamic(&result, SimOptions::default());
        assert!(sim.total_elements().is_finite());
        assert!(result.dynamic.planned_cost.is_finite());
    }

    #[test]
    fn layers_are_capped_and_well_formed() {
        let result =
            align_then_distribute_dynamic(&programs::fft_like(16, 8), 8, &DynamicConfig::default());
        for (layer, phase) in result.layers.iter().zip(&result.phases) {
            assert!(!layer.dists.is_empty());
            assert_eq!(layer.dists.len(), layer.costs.len());
            assert_eq!(layer.dists.len(), layer.sigs.len());
            // Bounded by the cap plus the always-retained favourites (one
            // per phase, plus at most one forced signature per phase after
            // coalescing).
            assert!(
                layer.dists.len()
                    <= result.config.max_candidates_per_phase + 2 * result.phases.len()
            );
            // The phase's own model optimum is always retained.
            let best = phase.report.best().distribution.grid();
            assert!(
                layer.dists.iter().any(|d| d.grid() == best),
                "layer missing the phase optimum {best:?}"
            );
            for d in &layer.dists {
                assert_eq!(d.grid().iter().product::<usize>(), 8);
            }
        }
        // The chosen plan picks within the layers.
        for (layer, (&chosen, dist)) in result
            .layers
            .iter()
            .zip(result.dynamic.chosen.iter().zip(&result.dynamic.per_phase))
        {
            assert!(chosen < layer.dists.len());
            assert_eq!(format!("{}", layer.dists[chosen]), format!("{dist}"));
        }
    }

    #[test]
    fn pool_signatures_span_phases() {
        // Every phase prices the shared pool, so "stay put" on any other
        // phase's favourite is always a comparable option and the plan can
        // never price worse than the best static candidate of the pool.
        let result =
            align_then_distribute_dynamic(&programs::fft_like(16, 8), 8, &DynamicConfig::default());
        assert_eq!(result.phases.len(), 2);
        let d = &result.dynamic;
        assert!(d.planned_cost <= result.static_planned_cost + 1e-9, "{d}");
    }

    #[test]
    fn planned_cost_equals_simulated_cost() {
        // The exactness contract, spot-checked here on one workload (the
        // full property test over every phase workload lives in
        // tests/dynamic_tests.rs): priced == simulated under the pricing
        // options.
        let mut cfg = DynamicConfig::default();
        cfg.sim = SimOptions::exact();
        let result = align_then_distribute_dynamic(&programs::fft_like(16, 8), 8, &cfg);
        let sim = simulate_dynamic(&result, SimOptions::exact());
        assert!(
            (result.dynamic.planned_cost - sim.total_elements()).abs() < 1e-9,
            "planned {} vs simulated {}",
            result.dynamic.planned_cost,
            sim.total_elements()
        );
    }

    #[test]
    fn unused_boundaries_coalesce() {
        // One trip per phase: the boundary all-to-all cannot pay for
        // itself, the DP keeps one layout, and the unused seam disappears
        // from the plan entirely.
        let result =
            align_then_distribute_dynamic(&programs::fft_like(32, 1), 8, &DynamicConfig::default());
        assert_eq!(result.phases.len(), 1, "unused boundary coalesced");
        assert!(!result.dynamic.redistributes());
        assert_eq!(result.num_atoms(), 2, "both atoms survive the merge");
    }
}
