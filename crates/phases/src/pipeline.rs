//! The three-stage pipeline: align → distribute per phase → redistribute
//! between phases.
//!
//! [`align_then_distribute_dynamic`] is the dynamic counterpart of
//! [`distrib::align_then_distribute`]: it cuts the program into phases,
//! aligns and distribution-solves each phase in isolation, prices the
//! redistribution edges between consecutive phases' candidate distributions,
//! and solves the layered DAG for the cheapest end-to-end plan. The result
//! carries the whole-program static solution alongside, so callers (and the
//! `dynamic_vs_static` experiments) can compare both under the exact
//! communication simulator: [`simulate_dynamic`] plays the per-phase
//! programs *and* the redistribution steps through `commsim`.

use crate::dynamic::{solve_dynamic, DynamicDistribution, PhaseCandidates, RedistStep};
use crate::redist::{price_redistribution, RedistCost};
use crate::segment::{detect_phase_boundaries, SegmentationConfig};
use adg::{build::arrays_assigned, build::arrays_read, Adg, NodeKind, PortId};
use align_ir::{ArrayId, Program};
use alignment_core::pipeline::{align_program, AlignmentResult, PipelineConfig};
use alignment_core::position::PortAlignment;
use commsim::{redistribution_traffic, simulate, SimOptions, SimReport};
use distrib::{
    align_then_distribute, solve_distribution, DistributionCostModel, DistributionReport,
    FullPipelineConfig, FullPipelineResult, Layout, ProgramDistribution, SolveConfig,
};
use std::collections::BTreeSet;

/// Configuration of the dynamic pipeline.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Alignment configuration (used for each phase and for the static
    /// baseline).
    pub alignment: PipelineConfig,
    /// Distribution search per phase, minus the processor count. `None` keys
    /// every knob off [`SolveConfig::new`].
    pub distribution: Option<SolveConfig>,
    /// How many ranked candidates per phase enter the layered DAG. Small
    /// values keep the boundary pricing quadratic-in-K cheap; the per-phase
    /// optimum is always included.
    pub top_k: usize,
    /// Explicit phase boundaries (top-level statement indices), overriding
    /// detection. `None` runs [`detect_phase_boundaries`].
    pub boundaries: Option<Vec<usize>>,
    /// Residual-volume threshold below which an atom is neutral during
    /// boundary detection.
    pub neutral_volume: f64,
    /// Sampling bounds for redistribution pricing and simulation.
    pub sim: SimOptions,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            alignment: PipelineConfig::default(),
            distribution: None,
            top_k: 4,
            boundaries: None,
            neutral_volume: 0.0,
            sim: SimOptions::default(),
        }
    }
}

impl DynamicConfig {
    fn solve_config(&self, nprocs: usize) -> SolveConfig {
        match &self.distribution {
            Some(cfg) => SolveConfig {
                nprocs,
                ..cfg.clone()
            },
            None => SolveConfig::new(nprocs),
        }
    }
}

/// Everything one phase produced.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Top-level statement range `[start, end)` of the phase.
    pub range: (usize, usize),
    /// The phase as a standalone program.
    pub program: Program,
    /// Its ADG.
    pub adg: Adg,
    /// Its alignment.
    pub alignment: AlignmentResult,
    /// Its ranked distribution report.
    pub report: DistributionReport,
}

/// The dynamic pipeline's full output.
#[derive(Debug, Clone)]
pub struct DynamicPipelineResult {
    /// Processor count everything is distributed over.
    pub nprocs: usize,
    /// Per-phase analyses, in program order.
    pub phases: Vec<PhaseResult>,
    /// Arrays alive across each boundary: `(array, name, extents)`.
    pub live: Vec<Vec<(ArrayId, String, Vec<i64>)>>,
    /// The candidate layer of each phase the DAG chose from (each phase's
    /// top-K cross-seeded with every other phase's top-K, so "stay put" is
    /// always an option the redistribution edge had to beat).
    pub layers: Vec<PhaseCandidates>,
    /// The chosen dynamic distribution.
    pub dynamic: DynamicDistribution,
    /// The whole-program static solution, for comparison.
    pub static_result: FullPipelineResult,
    /// The configuration used (needed to re-price or simulate).
    pub config: DynamicConfig,
}

impl DynamicPipelineResult {
    /// Model cost of the best *static* distribution, in the same units as
    /// [`DynamicDistribution::model_cost`].
    pub fn static_model_cost(&self) -> f64 {
        self.static_result.best().cost.total()
    }
}

/// The port where an array rests at a phase boundary: the sink side when the
/// phase assigns it, otherwise its source.
fn boundary_port(adg: &Adg, array: ArrayId, at_end: bool) -> Option<PortId> {
    let sink = || {
        adg.nodes().find_map(|(_, n)| match n.kind {
            NodeKind::Sink { array: a } if a == array => n.ports.first().copied(),
            _ => None,
        })
    };
    let source = || {
        adg.nodes().find_map(|(_, n)| match n.kind {
            NodeKind::Source { array: a } if a == array => n.output_ports().first().copied(),
            _ => None,
        })
    };
    if at_end {
        sink().or_else(source)
    } else {
        source()
    }
}

/// The resting alignment of an array at a phase boundary.
fn boundary_alignment(phase: &PhaseResult, array: ArrayId, at_end: bool) -> Option<PortAlignment> {
    let port = boundary_port(&phase.adg, array, at_end)?;
    Some(phase.alignment.alignment.port(port).clone())
}

/// Run the complete three-stage analysis: detect phases, align and
/// distribution-solve each, price the redistribution DAG, and pick the
/// cheapest dynamic plan. The static whole-program solution is computed
/// alongside for comparison.
pub fn align_then_distribute_dynamic(
    program: &Program,
    nprocs: usize,
    config: &DynamicConfig,
) -> DynamicPipelineResult {
    let boundaries = match &config.boundaries {
        Some(b) => b.clone(),
        None => detect_phase_boundaries(
            program,
            &SegmentationConfig {
                alignment: config.alignment,
                neutral_volume: config.neutral_volume,
            },
        ),
    };

    // Stage 1+2 per phase: align, then rank distributions.
    let solve_cfg = config.solve_config(nprocs);
    let phases: Vec<PhaseResult> = program
        .segment_ranges(&boundaries)
        .into_iter()
        .map(|(lo, hi)| {
            let sub = program.subprogram(lo..hi);
            let (adg, alignment) = align_program(&sub, &config.alignment);
            let report = solve_distribution(&adg, &alignment.alignment, &solve_cfg);
            PhaseResult {
                range: (lo, hi),
                program: sub,
                adg,
                alignment,
                report,
            }
        })
        .collect();

    // Liveness across boundaries: arrays referenced on both sides.
    let referenced: Vec<BTreeSet<ArrayId>> = phases
        .iter()
        .map(|p| {
            let mut set = arrays_read(&p.program.body, &p.program);
            set.extend(arrays_assigned(&p.program.body));
            set
        })
        .collect();
    let live: Vec<Vec<(ArrayId, String, Vec<i64>)>> = (0..phases.len().saturating_sub(1))
        .map(|b| {
            let before: BTreeSet<ArrayId> = referenced[..=b]
                .iter()
                .flat_map(|s| s.iter().copied())
                .collect();
            let after: BTreeSet<ArrayId> = referenced[b + 1..]
                .iter()
                .flat_map(|s| s.iter().copied())
                .collect();
            before
                .intersection(&after)
                .map(|&a| {
                    let decl = program.decl(a);
                    (a, decl.name.clone(), decl.extents.clone())
                })
                .collect()
        })
        .collect();

    // Stage 3: the layered DAG. Every layer is cross-seeded with the union
    // of all phases' top-K (grid, layout) signatures, re-priced under each
    // phase's own cost model: without this, a phase whose top-K excludes
    // another phase's favourite could force a redistribution the DAG never
    // got to compare against staying put.
    let mut signatures: Vec<(Vec<usize>, Vec<Layout>)> = Vec::new();
    for p in &phases {
        for r in p.report.ranked.iter().take(config.top_k.max(1)) {
            let sig = (r.distribution.grid(), r.distribution.layouts());
            if !signatures.contains(&sig) {
                signatures.push(sig);
            }
        }
    }
    let layers: Vec<PhaseCandidates> = phases
        .iter()
        .map(|p| {
            let model = DistributionCostModel::with_max_points(
                &p.adg,
                &p.alignment.alignment,
                solve_cfg.params.max_points_per_edge,
            );
            let extents = &p.report.template_extents;
            let mut dists: Vec<ProgramDistribution> = Vec::new();
            let mut costs = Vec::new();
            for (grid, layouts) in &signatures {
                if grid.len() != extents.len() {
                    continue; // cross-rank signature: not portable to this phase
                }
                let dist = ProgramDistribution::new(extents, grid, layouts);
                if dists.contains(&dist) {
                    continue;
                }
                costs.push(model.cost(&dist, &solve_cfg.params).total());
                dists.push(dist);
            }
            if dists.is_empty() {
                // No portable signature (phases of different template rank):
                // fall back to the phase's own ranked list.
                for r in p.report.ranked.iter().take(config.top_k.max(1)) {
                    costs.push(r.cost.total());
                    dists.push(r.distribution.clone());
                }
            }
            PhaseCandidates { dists, costs }
        })
        .collect();
    let params = solve_cfg.params;
    // Per-array redistribution prices of one (boundary, candidate pair)
    // edge. Probed K² times per boundary by the DP, so it returns only the
    // Copy costs; the winning path's full RedistSteps are materialised once
    // below.
    let price_boundary = |b: usize, j: usize, k: usize| -> Vec<(usize, RedistCost)> {
        let src_dist = &layers[b].dists[j];
        let dst_dist = &layers[b + 1].dists[k];
        live[b]
            .iter()
            .enumerate()
            .filter_map(|(i, (array, _, extents))| {
                let src_align = boundary_alignment(&phases[b], *array, true)?;
                let dst_align = boundary_alignment(&phases[b + 1], *array, false)?;
                Some((
                    i,
                    price_redistribution(
                        extents, &src_align, src_dist, &dst_align, dst_dist, config.sim,
                    ),
                ))
            })
            .collect()
    };
    let mut dynamic = solve_dynamic(&layers, |b, j, k| {
        price_boundary(b, j, k)
            .iter()
            .map(|(_, c)| c.total(&params))
            .sum()
    });
    dynamic.steps = (0..phases.len().saturating_sub(1))
        .map(|b| {
            price_boundary(b, dynamic.chosen[b], dynamic.chosen[b + 1])
                .into_iter()
                .map(|(i, cost)| {
                    let (array, name, extents) = &live[b][i];
                    RedistStep {
                        array: *array,
                        name: name.clone(),
                        extents: extents.clone(),
                        cost,
                    }
                })
                .collect()
        })
        .collect();

    // The static baseline over the whole program.
    let static_result = align_then_distribute(
        program,
        nprocs,
        &FullPipelineConfig {
            alignment: config.alignment,
            distribution: config.distribution.clone(),
        },
    );

    DynamicPipelineResult {
        nprocs,
        phases,
        live,
        layers,
        dynamic,
        static_result,
        config: config.clone(),
    }
}

/// Simulated traffic of a dynamic plan, phase by phase plus the
/// redistribution steps — the end-to-end validation of the DAG model.
#[derive(Debug, Clone)]
pub struct DynamicSimReport {
    /// Simulated element traffic of each phase under its chosen
    /// distribution.
    pub per_phase: Vec<SimReport>,
    /// Exact element traffic of each boundary's redistribution steps.
    pub redist_elements: Vec<f64>,
}

impl DynamicSimReport {
    /// Total elements moved: in-phase traffic plus redistribution.
    pub fn total_elements(&self) -> f64 {
        self.per_phase
            .iter()
            .map(SimReport::total_elements)
            .sum::<f64>()
            + self.redist_elements.iter().sum::<f64>()
    }
}

/// Play the chosen dynamic distribution through the communication
/// simulator: each phase's program under its phase distribution, plus the
/// owner-exact cost of every redistribution step.
pub fn simulate_dynamic(result: &DynamicPipelineResult, opts: SimOptions) -> DynamicSimReport {
    let per_phase: Vec<SimReport> = result
        .phases
        .iter()
        .zip(&result.dynamic.per_phase)
        .map(|(phase, dist)| simulate(&phase.adg, &phase.alignment.alignment, dist, opts))
        .collect();
    let redist_elements: Vec<f64> = (0..result.phases.len().saturating_sub(1))
        .map(|b| {
            let src_phase = &result.phases[b];
            let dst_phase = &result.phases[b + 1];
            let src_dist = &result.dynamic.per_phase[b];
            let dst_dist = &result.dynamic.per_phase[b + 1];
            result.live[b]
                .iter()
                .filter_map(|(array, _, extents)| {
                    let src_align = boundary_alignment(src_phase, *array, true)?;
                    let dst_align = boundary_alignment(dst_phase, *array, false)?;
                    let t = redistribution_traffic(
                        extents,
                        &src_align,
                        src_dist,
                        &dst_align,
                        dst_dist,
                        &[],
                        opts,
                    );
                    Some(t.element_moves + t.broadcast_elements)
                })
                .sum()
        })
        .collect();
    DynamicSimReport {
        per_phase,
        redist_elements,
    }
}

/// Simulated element traffic of the best *static* distribution over the
/// whole program — the baseline [`simulate_dynamic`] is compared against.
pub fn simulate_static(result: &DynamicPipelineResult, opts: SimOptions) -> SimReport {
    simulate(
        &result.static_result.adg,
        &result.static_result.alignment.alignment,
        &result.static_result.best().distribution,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_ir::programs;

    #[test]
    fn fft_like_plans_two_phases_and_redistributes() {
        let result = align_then_distribute_dynamic(
            &programs::fft_like(32, 40),
            8,
            &DynamicConfig::default(),
        );
        assert_eq!(result.phases.len(), 2, "detected phases");
        assert_eq!(result.live.len(), 1);
        assert_eq!(result.live[0].len(), 1, "A is live across the boundary");
        let d = &result.dynamic;
        assert!(d.redistributes(), "{d}");
        // Each phase serialises its traffic axis.
        assert_eq!(d.per_phase[0].grid(), vec![8, 1], "{d}");
        assert_eq!(d.per_phase[1].grid(), vec![1, 8], "{d}");
        assert!(d.model_cost < result.static_model_cost(), "{d}");
    }

    #[test]
    fn explicit_boundaries_override_detection() {
        let mut cfg = DynamicConfig::default();
        cfg.boundaries = Some(vec![]);
        let one = align_then_distribute_dynamic(&programs::fft_like(16, 4), 4, &cfg);
        assert_eq!(one.phases.len(), 1);
        assert!(!one.dynamic.redistributes());
        cfg.boundaries = Some(vec![1]);
        let two = align_then_distribute_dynamic(&programs::fft_like(16, 4), 4, &cfg);
        assert_eq!(two.phases.len(), 2);
    }

    #[test]
    fn single_phase_dynamic_matches_static_choice() {
        // A program with one topology: the dynamic plan degenerates to the
        // static solution (same distribution, no redistribution steps).
        let result = align_then_distribute_dynamic(
            &programs::stencil2d(24, 3),
            4,
            &DynamicConfig::default(),
        );
        assert_eq!(result.phases.len(), 1);
        assert!(result.dynamic.steps.is_empty());
        assert_eq!(
            format!("{}", result.dynamic.per_phase[0]),
            format!("{}", result.static_result.best().distribution)
        );
    }

    #[test]
    fn multigrid_pipeline_runs_end_to_end() {
        let result = align_then_distribute_dynamic(
            &programs::multigrid_vcycle(16, 2, 2),
            4,
            &DynamicConfig::default(),
        );
        assert!(!result.phases.is_empty());
        let sim = simulate_dynamic(&result, SimOptions::default());
        assert!(sim.total_elements().is_finite());
        // The dynamic plan never models worse than the static plan: staying
        // on the static distribution in every phase is always in the DAG...
        // when the phase layers contain it. At minimum the plan is finite
        // and simulatable.
        assert!(result.dynamic.model_cost.is_finite());
    }
}
