//! The three-stage pipeline: align → distribute per phase → redistribute
//! between phases — built on a **single analysis per atom**.
//!
//! [`align_then_distribute_dynamic`] fissions the program into distributable
//! atoms (loop distribution, [`align_ir::fission`]), aligns each atom
//! exactly once ([`crate::segment::analyze_atoms`]), and threads that one
//! [`AtomAnalysis`] through everything downstream: boundary detection reads
//! the signatures, per-phase candidate ranking prices distributions against
//! the atoms' ADGs, boundary pricing reads the resting port alignments, and
//! the simulator replays the same ADGs. The result carries the
//! whole-program static solution alongside, so callers (and the
//! `dynamic_vs_static` experiments) can compare both under the exact
//! communication simulator: [`simulate_dynamic`] plays the per-phase
//! programs *and* the redistribution steps through `commsim`.
//!
//! Candidate layers are kept lean by **dominance pruning** instead of the
//! former top-K + cross-seeding: every phase prices the same shared pool of
//! (grid, layout) signatures (so "stay put" is always an option), and a
//! candidate is dropped when another candidate of the same layer is at
//! least as good on the in-phase cost *and* on every boundary-redistribution
//! edge simultaneously.

use crate::dynamic::{solve_dynamic, DynamicDistribution, PhaseCandidates, RedistStep};
use crate::redist::{price_resting, RedistCost};
use crate::segment::{analyze_atoms, detect_boundaries, AtomAnalysis, SegmentationConfig};
use adg::{Adg, NodeKind, PortId};
use align_ir::{ArrayId, Program};
use alignment_core::pipeline::PipelineConfig;
use alignment_core::position::PortAlignment;
use commsim::{redistribution_traffic, simulate, RestingPlacement, SimOptions, SimReport};
use distrib::{
    align_then_distribute, solve_distribution, DistributionCost, DistributionReport,
    FullPipelineConfig, FullPipelineResult, Layout, ProgramDistribution, RankedDistribution,
    SolveConfig,
};
use std::collections::BTreeSet;

/// Configuration of the dynamic pipeline.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Alignment configuration (used for each atom and for the static
    /// baseline).
    pub alignment: PipelineConfig,
    /// Distribution search per atom, minus the processor count. `None` keys
    /// every knob off [`SolveConfig::new`].
    pub distribution: Option<SolveConfig>,
    /// Safety bound on the candidate layer size per phase, applied (by
    /// ascending in-phase cost) before boundary pricing; dominance pruning
    /// then shrinks the layers further. Every phase's in-phase optimum is
    /// exempt — it stays in every layer even past the cap, so "staying put"
    /// on a favourite is always priced (layers are therefore bounded by
    /// `cap + #phases`). Keeps the quadratic-in-K boundary pricing bounded
    /// on programs with many phases.
    pub max_candidates_per_phase: usize,
    /// Explicit phase boundaries — indices into the **distributable atom**
    /// sequence ([`Program::distributable_atoms`]) — overriding detection.
    /// `None` runs [`detect_boundaries`].
    pub boundaries: Option<Vec<usize>>,
    /// Residual-volume threshold below which an atom is neutral during
    /// boundary detection.
    pub neutral_volume: f64,
    /// Sampling bounds for redistribution pricing and simulation.
    pub sim: SimOptions,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            alignment: PipelineConfig::default(),
            distribution: None,
            max_candidates_per_phase: 12,
            boundaries: None,
            neutral_volume: 0.0,
            sim: SimOptions::default(),
        }
    }
}

impl DynamicConfig {
    fn solve_config(&self, nprocs: usize) -> SolveConfig {
        match &self.distribution {
            Some(cfg) => SolveConfig {
                nprocs,
                ..cfg.clone()
            },
            None => SolveConfig::new(nprocs),
        }
    }
}

/// Everything one phase produced. A phase is a contiguous run of atoms;
/// everything here is assembled from the atoms' single analyses — the phase
/// is never re-aligned as a whole.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Atom-index range `[start, end)` of the phase within the program's
    /// distributable-atom sequence.
    pub atom_range: (usize, usize),
    /// Top-level statement span `[start, end)` the phase's atoms originate
    /// from. Spans of adjacent phases overlap when loop distribution split
    /// one statement across a boundary.
    pub range: (usize, usize),
    /// The phase's atoms, each carrying its one-and-only analysis.
    pub atoms: Vec<AtomAnalysis>,
    /// Per-atom distribution searches (candidate generation).
    pub atom_reports: Vec<DistributionReport>,
    /// The phase-level report: the shared signature pool priced for this
    /// phase (per-atom costs summed), ranked ascending. `best()` is the
    /// phase's in-phase optimum.
    pub report: DistributionReport,
}

impl PhaseResult {
    /// The arrays this phase reads or assigns.
    pub fn referenced(&self) -> BTreeSet<ArrayId> {
        let mut out = BTreeSet::new();
        for a in &self.atoms {
            out.extend(a.referenced.iter().copied());
        }
        out
    }
}

/// A (grid, per-axis layout) signature — the portable identity of a
/// distribution, instantiable on any atom's template extents.
type Sig = (Vec<usize>, Vec<Layout>);

/// Per-array redistribution prices of one boundary edge: `(index into the
/// boundary's live list, cost)`.
type EdgePrices = Vec<(usize, RedistCost)>;

/// Adapt a signature to a template of rank `rank`: missing axes get one
/// processor (BLOCK), excess grid dimensions are folded into the last kept
/// one (preserving the processor count).
fn adapt_sig(sig: &Sig, rank: usize) -> Sig {
    let (grid, layouts) = sig;
    let rank = rank.max(1);
    match grid.len().cmp(&rank) {
        std::cmp::Ordering::Equal => sig.clone(),
        std::cmp::Ordering::Less => {
            let mut g = grid.clone();
            let mut l = layouts.clone();
            g.resize(rank, 1);
            l.resize(rank, Layout::Block);
            (g, l)
        }
        std::cmp::Ordering::Greater => {
            let mut g = grid[..rank].to_vec();
            let folded: usize = grid[rank - 1..].iter().product();
            g[rank - 1] = folded;
            (g, layouts[..rank].to_vec())
        }
    }
}

/// Instantiate a signature on a concrete template.
fn instantiate(sig: &Sig, extents: &[i64]) -> ProgramDistribution {
    let (grid, layouts) = adapt_sig(sig, extents.len());
    ProgramDistribution::new(extents, &grid, &layouts)
}

/// The portable signature of a concrete distribution.
fn sig_of(d: &ProgramDistribution) -> Sig {
    (d.grid(), d.layouts())
}

/// The dynamic pipeline's full output.
#[derive(Debug, Clone)]
pub struct DynamicPipelineResult {
    /// Processor count everything is distributed over.
    pub nprocs: usize,
    /// Per-phase analyses, in program order.
    pub phases: Vec<PhaseResult>,
    /// Arrays priced at each boundary: `(array, name, extents)` — the arrays
    /// whose *next* use after the boundary is the immediately following
    /// phase (gaps through untouched phases are priced once, where the
    /// array comes back into use).
    pub live: Vec<Vec<(ArrayId, String, Vec<i64>)>>,
    /// The candidate layer of each phase the DAG chose from, after
    /// dominance pruning of the shared signature pool.
    pub layers: Vec<PhaseCandidates>,
    /// The chosen dynamic distribution.
    pub dynamic: DynamicDistribution,
    /// The whole-program static solution, for comparison.
    pub static_result: FullPipelineResult,
    /// The configuration used (needed to re-price or simulate).
    pub config: DynamicConfig,
}

impl DynamicPipelineResult {
    /// Model cost of the best *static* distribution, in the same units as
    /// [`DynamicDistribution::model_cost`].
    pub fn static_model_cost(&self) -> f64 {
        self.static_result.best().cost.total()
    }

    /// Total number of distributable atoms across all phases.
    pub fn num_atoms(&self) -> usize {
        self.phases.iter().map(|p| p.atoms.len()).sum()
    }
}

/// The port where an array rests in an atom: the sink side when the atom
/// assigns it, otherwise its source.
fn resting_port(adg: &Adg, array: ArrayId, prefer_sink: bool) -> Option<PortId> {
    let sink = || {
        adg.nodes().find_map(|(_, n)| match n.kind {
            NodeKind::Sink { array: a } if a == array => n.ports.first().copied(),
            _ => None,
        })
    };
    let source = || {
        adg.nodes().find_map(|(_, n)| match n.kind {
            NodeKind::Source { array: a } if a == array => n.output_ports().first().copied(),
            _ => None,
        })
    };
    if prefer_sink {
        sink().or_else(source)
    } else {
        source()
    }
}

/// Where an array rests in an atom: its resting port's alignment plus the
/// atom's template extents (the space any distribution signature must be
/// instantiated on to price the placement).
fn atom_resting(
    atom: &AtomAnalysis,
    report: &DistributionReport,
    array: ArrayId,
    prefer_sink: bool,
) -> Option<(PortAlignment, Vec<i64>)> {
    let port = resting_port(&atom.adg, array, prefer_sink)?;
    Some((
        atom.alignment.alignment.port(port).clone(),
        report.template_extents.clone(),
    ))
}

/// The resting placement of `array` looking *backwards* from the end of
/// phase `b`: the last atom (searching right-to-left through phase `b` and
/// every earlier phase) that references the array. This is the phase-aware
/// part — an array untouched by the phases adjacent to a boundary rests
/// where it was last used, not at an edge-less source port of a phase that
/// never sees it.
fn resting_before(
    phases: &[PhaseResult],
    b: usize,
    array: ArrayId,
) -> Option<(PortAlignment, Vec<i64>, usize)> {
    for (p, phase) in phases.iter().enumerate().take(b + 1).rev() {
        for (a, atom) in phase.atoms.iter().enumerate().rev() {
            if atom.references(array) {
                return atom_resting(atom, &phase.atom_reports[a], array, true)
                    .map(|(al, e)| (al, e, p));
            }
        }
    }
    None
}

/// The resting placement of `array` at the start of phase `b`: the first of
/// its atoms that references the array.
fn resting_at_start(phase: &PhaseResult, array: ArrayId) -> Option<(PortAlignment, Vec<i64>)> {
    phase
        .atoms
        .iter()
        .zip(&phase.atom_reports)
        .find(|(atom, _)| atom.references(array))
        .and_then(|(atom, report)| atom_resting(atom, report, array, false))
}

/// Sum of two distribution costs, componentwise.
fn add_cost(a: DistributionCost, b: DistributionCost) -> DistributionCost {
    DistributionCost {
        shift: a.shift + b.shift,
        broadcast: a.broadcast + b.broadcast,
        general: a.general + b.general,
        imbalance: a.imbalance + b.imbalance,
    }
}

/// Run the complete three-stage analysis: fission into atoms, align each
/// once, detect phases, rank the shared candidate pool per phase, price the
/// redistribution DAG (dominance-pruned), and pick the cheapest dynamic
/// plan. The static whole-program solution is computed alongside for
/// comparison.
pub fn align_then_distribute_dynamic(
    program: &Program,
    nprocs: usize,
    config: &DynamicConfig,
) -> DynamicPipelineResult {
    // Stage 0+1: one analysis per atom; boundaries from the signatures.
    let atoms = analyze_atoms(program, &config.alignment);
    let boundaries = match &config.boundaries {
        Some(b) => b.clone(),
        None => detect_boundaries(
            &atoms,
            &SegmentationConfig {
                alignment: config.alignment,
                neutral_volume: config.neutral_volume,
            },
        ),
    };
    let atom_ranges = align_ir::ast::cut_ranges(atoms.len(), &boundaries);

    // Stage 2 candidate generation: one distribution search per atom, then
    // group atoms into phases. The phase-level report prices the shared
    // signature pool (per-atom costs summed) — the phase is never
    // re-aligned or re-searched as a whole.
    let solve_cfg = config.solve_config(nprocs);
    let params = solve_cfg.params;
    let mut atoms = atoms;
    let mut phases: Vec<PhaseResult> = Vec::with_capacity(atom_ranges.len());
    for &(lo, hi) in atom_ranges.iter().rev() {
        let phase_atoms: Vec<AtomAnalysis> = atoms.split_off(lo);
        let atom_reports: Vec<DistributionReport> = phase_atoms
            .iter()
            .map(|a| solve_distribution(&a.adg, &a.alignment.alignment, &solve_cfg))
            .collect();
        let range = (
            phase_atoms.first().map_or(0, |a| a.stmt_index),
            phase_atoms.last().map_or(0, |a| a.stmt_index + 1),
        );
        phases.push(PhaseResult {
            atom_range: (lo, hi),
            range,
            atoms: phase_atoms,
            atom_reports,
            report: DistributionReport {
                nprocs,
                template_extents: Vec::new(),
                ranked: Vec::new(),
                candidates_evaluated: 0,
                exhaustive: true,
            },
        });
    }
    phases.reverse();

    // The shared signature pool: every atom's ranked candidates, dedup'd.
    // Every phase prices the whole pool, so "staying put" across a boundary
    // is always a comparable option without any cross-seeding bookkeeping.
    let mut pool: Vec<Sig> = Vec::new();
    for phase in &phases {
        for report in &phase.atom_reports {
            for r in &report.ranked {
                let sig = (r.distribution.grid(), r.distribution.layouts());
                if !pool.contains(&sig) {
                    pool.push(sig);
                }
            }
        }
    }

    // Price the pool for each phase: per-atom model cost of the signature
    // instantiated on that atom's own template, summed over the phase.
    for phase in &mut phases {
        let models: Vec<distrib::DistributionCostModel> = phase
            .atoms
            .iter()
            .map(|a| {
                distrib::DistributionCostModel::with_max_points(
                    &a.adg,
                    &a.alignment.alignment,
                    params.max_points_per_edge,
                )
            })
            .collect();
        // The phase template: the elementwise-max cover of its atoms'
        // templates (used to materialise the phase-level representative
        // distribution; pricing always uses the per-atom templates).
        let rank = phase
            .atom_reports
            .iter()
            .map(|r| r.template_extents.len())
            .max()
            .unwrap_or(1);
        let mut extents = vec![1i64; rank];
        for report in &phase.atom_reports {
            for (t, &e) in report.template_extents.iter().enumerate() {
                extents[t] = extents[t].max(e);
            }
        }
        let mut ranked: Vec<RankedDistribution> = pool
            .iter()
            .map(|sig| {
                let cost = models
                    .iter()
                    .zip(&phase.atom_reports)
                    .map(|(m, r)| m.cost(&instantiate(sig, &r.template_extents), &params))
                    .fold(DistributionCost::default(), add_cost);
                RankedDistribution {
                    distribution: instantiate(sig, &extents),
                    cost,
                }
            })
            .collect();
        // Same ordering key as `solve_distribution`, so phase-level `best()`
        // is deterministic and matches the static choice on one-atom
        // single-phase programs.
        ranked.sort_by_cached_key(|r| {
            let grid = r.distribution.grid();
            (
                r.cost.total().max(0.0).to_bits(),
                grid.iter().copied().max().unwrap_or(1),
                grid,
                r.distribution.to_string(),
            )
        });
        ranked.dedup_by(|a, b| a.distribution == b.distribution);
        phase.report = DistributionReport {
            nprocs,
            template_extents: extents,
            ranked,
            candidates_evaluated: phase
                .atom_reports
                .iter()
                .map(|r| r.candidates_evaluated)
                .sum(),
            exhaustive: phase.atom_reports.iter().all(|r| r.exhaustive),
        };
    }

    // Liveness: an array is priced at boundary `b` when its *next* use is
    // phase `b+1` and it was referenced somewhere before the boundary.
    // Arrays skipping phases are priced once per gap (where they come back
    // into use), not dragged through every boundary in between.
    let phase_refs: Vec<BTreeSet<ArrayId>> = phases.iter().map(|p| p.referenced()).collect();
    let live: Vec<Vec<(ArrayId, String, Vec<i64>)>> = (0..phases.len().saturating_sub(1))
        .map(|b| {
            let before: BTreeSet<ArrayId> = phase_refs[..=b]
                .iter()
                .flat_map(|s| s.iter().copied())
                .collect();
            phase_refs[b + 1]
                .iter()
                .filter(|a| before.contains(a))
                .map(|&a| {
                    let decl = program.decl(a);
                    (a, decl.name.clone(), decl.extents.clone())
                })
                .collect()
        })
        .collect();

    // Stage 3: candidate layers from the shared pool, bounded by the
    // in-phase-cost safety cap. Every phase's own optimum signature is
    // retained in EVERY layer regardless of the cap, so "staying put" on
    // some phase's favourite is always an option the redistribution edges
    // get compared against — the cap alone could otherwise evict a foreign
    // favourite that ranks poorly in-phase and force a redistribution the
    // DAG never priced against the alternative.
    let cap = config.max_candidates_per_phase.max(1);
    let favourites: Vec<Sig> = phases
        .iter()
        .filter_map(|p| p.report.ranked.first())
        .map(|r| sig_of(&r.distribution))
        .collect();
    let full_layers: Vec<PhaseCandidates> = phases
        .iter()
        .map(|p| {
            let keep: Vec<&RankedDistribution> = p
                .report
                .ranked
                .iter()
                .enumerate()
                .filter(|(i, r)| *i < cap || favourites.contains(&sig_of(&r.distribution)))
                .map(|(_, r)| r)
                .collect();
            PhaseCandidates {
                dists: keep.iter().map(|r| r.distribution.clone()).collect(),
                costs: keep.iter().map(|r| r.cost.total()).collect(),
            }
        })
        .collect();

    // Price every boundary edge once (the DP probes each pair again). Per
    // array the resting distribution on the source side is phase-aware: an
    // array the source phase never touches may rest in *either* adjacent
    // candidate — the cheaper option is charged, instead of forcing it to
    // travel with a phase that never uses it. This is an optimistic lower
    // bound: the array's true resting layout through a gap is the chosen
    // candidate of the phase that last used it, which a per-edge cost
    // cannot see (a per-array layout state in the DP would make the model
    // exact — see ROADMAP). The winning path's steps and the simulator both
    // re-price gap arrays from the actual last-use layout.
    let edge: Vec<Vec<Vec<EdgePrices>>> = (0..phases.len().saturating_sub(1))
        .map(|b| {
            (0..full_layers[b].dists.len())
                .map(|j| {
                    (0..full_layers[b + 1].dists.len())
                        .map(|k| {
                            price_boundary(
                                &phases,
                                &live,
                                &phase_refs,
                                &full_layers,
                                b,
                                j,
                                k,
                                &params,
                                config.sim,
                            )
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    let edge_total = |b: usize, j: usize, k: usize| -> f64 {
        edge[b][j][k].iter().map(|(_, c)| c.total(&params)).sum()
    };

    // Dominance pruning: drop candidate `u` when some `v` in the same layer
    // is no worse on the in-phase cost and on every boundary edge
    // simultaneously (ties broken towards the lower index so exactly one of
    // an identical pair survives).
    let keep: Vec<Vec<usize>> = (0..full_layers.len())
        .map(|b| {
            let layer = &full_layers[b];
            let n = layer.dists.len();
            (0..n)
                .filter(|&u| {
                    !(0..n).any(|v| {
                        if v == u {
                            return false;
                        }
                        let mut no_worse = layer.costs[v] <= layer.costs[u];
                        let mut strictly = layer.costs[v] < layer.costs[u];
                        if b > 0 {
                            for j in 0..full_layers[b - 1].dists.len() {
                                let (eu, ev) = (edge_total(b - 1, j, u), edge_total(b - 1, j, v));
                                no_worse &= ev <= eu;
                                strictly |= ev < eu;
                            }
                        }
                        if b + 1 < full_layers.len() {
                            for k in 0..full_layers[b + 1].dists.len() {
                                let (eu, ev) = (edge_total(b, u, k), edge_total(b, v, k));
                                no_worse &= ev <= eu;
                                strictly |= ev < eu;
                            }
                        }
                        no_worse && (strictly || v < u)
                    })
                })
                .collect()
        })
        .collect();
    let layers: Vec<PhaseCandidates> = full_layers
        .iter()
        .zip(&keep)
        .map(|(layer, keep)| PhaseCandidates {
            dists: keep.iter().map(|&i| layer.dists[i].clone()).collect(),
            costs: keep.iter().map(|&i| layer.costs[i]).collect(),
        })
        .collect();

    // The layered-DAG shortest path over the pruned layers, read entirely
    // from the edge cache.
    let mut dynamic = solve_dynamic(&layers, |b, j, k| edge_total(b, keep[b][j], keep[b + 1][k]));
    // Materialise the winning path's steps EXACTLY: with the whole path
    // known, a gap array's source layout is the chosen candidate of the
    // phase that actually last used it — not the edge model's optimistic
    // min over adjacent candidates (the same accounting simulate_dynamic
    // uses, so reported step costs match the simulator).
    dynamic.steps = (0..phases.len().saturating_sub(1))
        .map(|b| {
            live[b]
                .iter()
                .filter_map(|(array, name, extents)| {
                    let (src_align, src_extents, src_phase) = resting_before(&phases, b, *array)?;
                    let (dst_align, dst_extents) = resting_at_start(&phases[b + 1], *array)?;
                    let src_dist =
                        instantiate(&sig_of(&dynamic.per_phase[src_phase]), &src_extents);
                    let dst_dist = instantiate(&sig_of(&dynamic.per_phase[b + 1]), &dst_extents);
                    let cost = price_resting(
                        extents,
                        &RestingPlacement::new(&src_align, &src_dist),
                        &RestingPlacement::new(&dst_align, &dst_dist),
                        config.sim,
                    );
                    Some(RedistStep {
                        array: *array,
                        name: name.clone(),
                        extents: extents.clone(),
                        cost,
                    })
                })
                .collect()
        })
        .collect();

    // The static baseline over the whole program.
    let static_result = align_then_distribute(
        program,
        nprocs,
        &FullPipelineConfig {
            alignment: config.alignment,
            distribution: config.distribution.clone(),
        },
    );

    DynamicPipelineResult {
        nprocs,
        phases,
        live,
        layers,
        dynamic,
        static_result,
        config: config.clone(),
    }
}

/// Per-array redistribution prices of one (boundary, candidate pair) edge.
#[allow(clippy::too_many_arguments)]
fn price_boundary(
    phases: &[PhaseResult],
    live: &[Vec<(ArrayId, String, Vec<i64>)>],
    phase_refs: &[BTreeSet<ArrayId>],
    layers: &[PhaseCandidates],
    b: usize,
    j: usize,
    k: usize,
    params: &distrib::DistribCostParams,
    sim: SimOptions,
) -> EdgePrices {
    let src_sig = sig_of(&layers[b].dists[j]);
    let dst_sig = sig_of(&layers[b + 1].dists[k]);
    live[b]
        .iter()
        .enumerate()
        .filter_map(|(i, (array, _, extents))| {
            let (src_align, src_extents, _) = resting_before(phases, b, *array)?;
            let (dst_align, dst_extents) = resting_at_start(&phases[b + 1], *array)?;
            let dst_dist = instantiate(&dst_sig, &dst_extents);
            let dst = RestingPlacement::new(&dst_align, &dst_dist);
            let src_dist = instantiate(&src_sig, &src_extents);
            let mut best = price_resting(
                extents,
                &RestingPlacement::new(&src_align, &src_dist),
                &dst,
                sim,
            );
            if !phase_refs[b].contains(array) {
                // Phase `b` never touches the array: it may equally have
                // been resting in the destination candidate's layout
                // already (the redistribution then happened where the
                // source phase last used it — covered by that boundary's
                // own pricing, or free if the layouts agree).
                let alt_dist = instantiate(&dst_sig, &src_extents);
                let alt = price_resting(
                    extents,
                    &RestingPlacement::new(&src_align, &alt_dist),
                    &dst,
                    sim,
                );
                if alt.total(params) < best.total(params) {
                    best = alt;
                }
            }
            Some((i, best))
        })
        .collect()
}

/// Simulated traffic of a dynamic plan, phase by phase plus the
/// redistribution steps — the end-to-end validation of the DAG model.
#[derive(Debug, Clone)]
pub struct DynamicSimReport {
    /// Simulated element traffic of each phase under its chosen
    /// distribution (each phase's atoms summed; `per_edge` entries are
    /// per-atom edge ids).
    pub per_phase: Vec<SimReport>,
    /// Exact element traffic of each boundary's redistribution steps.
    pub redist_elements: Vec<f64>,
}

impl DynamicSimReport {
    /// Total elements moved: in-phase traffic plus redistribution.
    pub fn total_elements(&self) -> f64 {
        self.per_phase
            .iter()
            .map(SimReport::total_elements)
            .sum::<f64>()
            + self.redist_elements.iter().sum::<f64>()
    }
}

/// Play the chosen dynamic distribution through the communication
/// simulator: each atom's ADG under its phase's chosen distribution
/// (re-instantiated on the atom's own template), plus the owner-exact cost
/// of every redistribution step. Unlike the DP's edge model, the simulation
/// knows the whole chosen path, so an array skipping phases is priced from
/// the distribution of the phase that actually last used it.
pub fn simulate_dynamic(result: &DynamicPipelineResult, opts: SimOptions) -> DynamicSimReport {
    let per_phase: Vec<SimReport> = result
        .phases
        .iter()
        .zip(&result.dynamic.per_phase)
        .map(|(phase, dist)| {
            let sig = sig_of(dist);
            let mut merged = SimReport {
                processors: result.nprocs,
                ..SimReport::default()
            };
            for (atom, report) in phase.atoms.iter().zip(&phase.atom_reports) {
                let atom_dist = instantiate(&sig, &report.template_extents);
                let r = simulate(&atom.adg, &atom.alignment.alignment, &atom_dist, opts);
                merged.total.add(&r.total);
                merged.per_edge.extend(r.per_edge);
            }
            merged
        })
        .collect();
    let redist_elements: Vec<f64> = (0..result.phases.len().saturating_sub(1))
        .map(|b| {
            result.live[b]
                .iter()
                .filter_map(|(array, _, extents)| {
                    let (src_align, src_extents, src_phase) =
                        resting_before(&result.phases, b, *array)?;
                    let (dst_align, dst_extents) = resting_at_start(&result.phases[b + 1], *array)?;
                    let src_dist =
                        instantiate(&sig_of(&result.dynamic.per_phase[src_phase]), &src_extents);
                    let dst_dist =
                        instantiate(&sig_of(&result.dynamic.per_phase[b + 1]), &dst_extents);
                    let t = redistribution_traffic(
                        extents,
                        &src_align,
                        &src_dist,
                        &dst_align,
                        &dst_dist,
                        &[],
                        opts,
                    );
                    Some(t.element_moves + t.broadcast_elements)
                })
                .sum()
        })
        .collect();
    DynamicSimReport {
        per_phase,
        redist_elements,
    }
}

/// Simulated element traffic of the best *static* distribution over the
/// whole program — the baseline [`simulate_dynamic`] is compared against.
pub fn simulate_static(result: &DynamicPipelineResult, opts: SimOptions) -> SimReport {
    simulate(
        &result.static_result.adg,
        &result.static_result.alignment.alignment,
        &result.static_result.best().distribution,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_ir::programs;

    #[test]
    fn fft_like_plans_two_phases_and_redistributes() {
        let result = align_then_distribute_dynamic(
            &programs::fft_like(32, 40),
            8,
            &DynamicConfig::default(),
        );
        assert_eq!(result.phases.len(), 2, "detected phases");
        assert_eq!(result.live.len(), 1);
        assert_eq!(result.live[0].len(), 1, "A is live across the boundary");
        let d = &result.dynamic;
        assert!(d.redistributes(), "{d}");
        // Each phase serialises its traffic axis.
        assert_eq!(d.per_phase[0].grid(), vec![8, 1], "{d}");
        assert_eq!(d.per_phase[1].grid(), vec![1, 8], "{d}");
        assert!(d.model_cost < result.static_model_cost(), "{d}");
    }

    #[test]
    fn explicit_boundaries_override_detection() {
        let mut cfg = DynamicConfig::default();
        cfg.boundaries = Some(vec![]);
        let one = align_then_distribute_dynamic(&programs::fft_like(16, 4), 4, &cfg);
        assert_eq!(one.phases.len(), 1);
        assert!(!one.dynamic.redistributes());
        cfg.boundaries = Some(vec![1]);
        let two = align_then_distribute_dynamic(&programs::fft_like(16, 4), 4, &cfg);
        assert_eq!(two.phases.len(), 2);
    }

    #[test]
    fn single_phase_dynamic_matches_static_choice() {
        // A program with one topology: the dynamic plan degenerates to the
        // static solution (same distribution, no redistribution steps).
        let result = align_then_distribute_dynamic(
            &programs::stencil2d(24, 3),
            4,
            &DynamicConfig::default(),
        );
        assert_eq!(result.phases.len(), 1);
        assert!(result.dynamic.steps.is_empty());
        assert_eq!(
            format!("{}", result.dynamic.per_phase[0]),
            format!("{}", result.static_result.best().distribution)
        );
    }

    #[test]
    fn multigrid_pipeline_runs_end_to_end() {
        let result = align_then_distribute_dynamic(
            &programs::multigrid_vcycle(16, 2, 2),
            4,
            &DynamicConfig::default(),
        );
        assert!(!result.phases.is_empty());
        let sim = simulate_dynamic(&result, SimOptions::default());
        assert!(sim.total_elements().is_finite());
        assert!(result.dynamic.model_cost.is_finite());
    }

    #[test]
    fn layers_are_dominance_pruned_and_well_formed() {
        let result =
            align_then_distribute_dynamic(&programs::fft_like(16, 8), 8, &DynamicConfig::default());
        for (layer, phase) in result.layers.iter().zip(&result.phases) {
            assert!(!layer.dists.is_empty());
            assert!(
                layer.dists.len() <= result.config.max_candidates_per_phase + result.phases.len()
            );
            // The phase's own optimum always survives pruning (nothing can
            // dominate it on the in-phase axis).
            let best = phase.report.best().distribution.grid();
            assert!(
                layer.dists.iter().any(|d| d.grid() == best),
                "layer missing the phase optimum {best:?}"
            );
            for d in &layer.dists {
                assert_eq!(d.grid().iter().product::<usize>(), 8);
            }
        }
        // The chosen plan picks within the pruned layers.
        for (layer, (&chosen, dist)) in result
            .layers
            .iter()
            .zip(result.dynamic.chosen.iter().zip(&result.dynamic.per_phase))
        {
            assert!(chosen < layer.dists.len());
            assert_eq!(format!("{}", layer.dists[chosen]), format!("{dist}"));
        }
    }

    #[test]
    fn pool_signatures_span_phases() {
        // Every phase prices the shared pool, so phase 2's layer contains
        // phase 1's favourite signature unless dominance removed it — in
        // which case some candidate is at least as good everywhere, and the
        // DAG's "stay put" comparison is still faithful.
        let result =
            align_then_distribute_dynamic(&programs::fft_like(16, 8), 8, &DynamicConfig::default());
        assert_eq!(result.phases.len(), 2);
        let d = &result.dynamic;
        assert!(d.model_cost <= result.static_model_cost() + 1e-9, "{d}");
    }
}
