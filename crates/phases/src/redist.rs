//! Pricing inter-phase redistribution.
//!
//! When the chosen distribution changes between phases, every array alive
//! across the boundary must be re-laid-out. This module prices that step
//! consistently with the intra-phase model ([`distrib::DistribCostParams`]):
//!
//! * **point-to-point moves** — elements whose owner changes between the two
//!   (alignment, distribution) pairs. This covers BLOCK ↔ CYCLIC remaps and
//!   transpose-style all-to-alls alike, because the underlying owner
//!   comparison ([`commsim::redistribution_traffic`]) is exact (sampled);
//!   each move is weighted by the all-to-all routing factor;
//! * **replication spread** — a previously single position becoming
//!   replicated broadcasts the object down a tree, one stage per
//!   `log2(grid)` doubling along each newly replicated axis;
//! * **replication collapse** — dropping replication is free (every
//!   processor already holds its part).

use alignment_core::position::PortAlignment;
use commsim::{redistribution_traffic, RestingPlacement, SimOptions, TemplateDistribution};
use distrib::DistribCostParams;

/// The modelled cost of redistributing one object between phases.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RedistCost {
    /// Elements moving point-to-point (owner changed).
    pub moved: f64,
    /// Elements spread into a newly replicated position.
    pub broadcast: f64,
    /// Broadcast tree stages the spread needs (`Σ log2(g)` over newly
    /// replicated axes; 0 when nothing is spread).
    pub stages: f64,
    /// Distinct (sender, receiver) pairs (diagnostic only).
    pub messages: f64,
}

impl RedistCost {
    /// The scalar the layered-DAG search minimises, in the same units as
    /// [`distrib::DistributionCost::total`]: moved elements carry the
    /// all-to-all routing factor (a redistribution is general communication),
    /// spreads pay one hop cost per tree stage.
    pub fn total(&self, params: &DistribCostParams) -> f64 {
        self.moved * params.general_factor
            + self.broadcast * self.stages * params.broadcast_hop_cost
    }

    /// True when the boundary needs no communication at all.
    pub fn is_zero(&self) -> bool {
        self.moved == 0.0 && self.broadcast == 0.0
    }

    /// Raw element traffic of the move (point-to-point plus broadcast) —
    /// the same units the communication simulator counts, and therefore the
    /// scalar the per-array layout-state DP sums. Exactly
    /// [`commsim::EdgeTraffic::elements`] of the underlying owner
    /// comparison.
    pub fn elements(&self) -> f64 {
        self.moved + self.broadcast
    }
}

impl std::fmt::Display for RedistCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "moved={:.1} broadcast={:.1}x{:.0} messages={:.0}",
            self.moved,
            self.broadcast,
            self.stages.max(0.0),
            self.messages
        )
    }
}

/// Price moving one object (with the given per-axis element extents) from
/// its resting placement before a boundary to its resting placement after
/// it — the [`RestingPlacement`] front end of [`price_redistribution`].
/// With phase-aware placement the source need not be the adjacent phase's
/// sink placement: the caller chooses where the array actually rests (e.g.
/// the cheaper of the two adjacent candidates, for an array the source
/// phase never touches).
pub fn price_resting<S, D>(
    extents: &[i64],
    src: &RestingPlacement<'_, S>,
    dst: &RestingPlacement<'_, D>,
    opts: SimOptions,
) -> RedistCost
where
    S: TemplateDistribution + ?Sized,
    D: TemplateDistribution + ?Sized,
{
    price_redistribution(
        extents,
        src.alignment,
        src.distribution,
        dst.alignment,
        dst.distribution,
        opts,
    )
}

/// Price moving one object (with the given per-axis element extents) from
/// its placement in the previous phase to its placement in the next one.
///
/// The placements are an alignment (where the array rests on the template)
/// combined with any [`TemplateDistribution`] of that template. Both
/// distributions must cover the same processor count — redistribution
/// changes the mapping, not the machine.
pub fn price_redistribution<S, D>(
    extents: &[i64],
    src_align: &PortAlignment,
    src_dist: &S,
    dst_align: &PortAlignment,
    dst_dist: &D,
    opts: SimOptions,
) -> RedistCost
where
    S: TemplateDistribution + ?Sized,
    D: TemplateDistribution + ?Sized,
{
    let traffic =
        redistribution_traffic(extents, src_align, src_dist, dst_align, dst_dist, &[], opts);
    // Tree stages of the spread: one doubling per processor along each axis
    // the destination replicates but the source does not.
    let dst_dims = dst_dist.grid_dims();
    let stages: f64 = dst_align
        .offsets
        .iter()
        .enumerate()
        .filter(|(t, o)| {
            o.is_replicated() && !src_align.offsets.get(*t).is_some_and(|s| s.is_replicated())
        })
        .map(|(t, _)| {
            (dst_dims.get(t).copied().unwrap_or(1).max(1) as f64)
                .log2()
                .ceil()
        })
        .sum();
    RedistCost {
        moved: traffic.element_moves,
        broadcast: traffic.broadcast_elements,
        stages,
        messages: traffic.messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrib::{Layout, ProgramDistribution};

    fn block(extents: &[i64], grid: &[usize]) -> ProgramDistribution {
        ProgramDistribution::new(extents, grid, &vec![Layout::Block; grid.len()])
    }

    #[test]
    fn identical_placements_are_free() {
        let a = PortAlignment::identity(2, 2);
        let d = block(&[32, 32], &[2, 2]);
        let c = price_redistribution(&[32, 32], &a, &d, &a, &d, SimOptions::default());
        assert!(c.is_zero(), "{c}");
        assert_eq!(c.total(&DistribCostParams::default()), 0.0);
    }

    #[test]
    fn grid_flip_prices_as_all_to_all() {
        let a = PortAlignment::identity(2, 2);
        let rows = block(&[32, 32], &[4, 1]);
        let cols = block(&[32, 32], &[1, 4]);
        let c = price_redistribution(&[32, 32], &a, &rows, &a, &cols, SimOptions::default());
        // 3/4 of the elements change owner in a 4-way row->column flip.
        assert!(c.moved > 0.6 * 32.0 * 32.0, "{c}");
        let params = DistribCostParams::default();
        assert!((c.total(&params) - c.moved * params.general_factor).abs() < 1e-9);
    }

    #[test]
    fn block_to_cyclic_remap_moves_interior() {
        let a = PortAlignment::identity(1, 1);
        let blk = ProgramDistribution::new(&[64], &[4], &[Layout::Block]);
        let cyc = ProgramDistribution::new(&[64], &[4], &[Layout::Cyclic]);
        let c = price_redistribution(&[64], &a, &blk, &a, &cyc, SimOptions::default());
        // Exactly 1/4 of the cells keep their owner under a 4-way
        // block->cyclic remap.
        assert!((c.moved - 48.0).abs() < 1e-9, "{c}");
    }

    #[test]
    fn spread_charges_tree_stages() {
        use alignment_core::position::OffsetAlign;
        let single = PortAlignment::identity(1, 2);
        let mut replicated = PortAlignment::identity(1, 2);
        replicated.offsets[1] = OffsetAlign::Replicated;
        let d = block(&[32, 32], &[2, 8]);
        let c = price_redistribution(&[32], &single, &d, &replicated, &d, SimOptions::default());
        assert_eq!(c.broadcast, 32.0, "{c}");
        assert_eq!(c.stages, 3.0, "log2(8) stages: {c}");
        // Collapse in the other direction is free.
        let back = price_redistribution(&[32], &replicated, &d, &single, &d, SimOptions::default());
        assert!(back.is_zero(), "{back}");
    }
}
