//! Phase partitioning: where does the communication topology change?
//!
//! The unit of segmentation is the *top-level statement* (a whole loop nest
//! counts as one atom — cutting inside a loop body would require loop
//! distribution, which the IR does not model). Each atom is re-analysed as a
//! one-statement program; its aligned ADG yields a [`PhaseSignature`]:
//!
//! * the residual shift volume per template axis (from the edge weights —
//!   which axis does data move along?),
//! * the residual general/broadcast volume,
//! * the axis permutation each array is kept at (from the aligned source
//!   ports — a transpose-heavy atom flips these).
//!
//! Consecutive atoms *conflict* when a shared array changes its axis
//! permutation or when the dominant communication axis moves; each conflict
//! is a phase boundary. Atoms with no residual communication are neutral and
//! attach to the phase on their left, so a communication-free copy between
//! two hostile phases does not multiply the phase count.

use adg::NodeKind;
use align_ir::{ArrayId, Program};
use alignment_core::pipeline::{align_program, PipelineConfig};
use alignment_core::CostModel;
use std::collections::BTreeMap;

/// Configuration of the phase detector.
#[derive(Debug, Clone, Default)]
pub struct SegmentationConfig {
    /// Alignment configuration used when analysing each atom in isolation.
    pub alignment: PipelineConfig,
    /// Residual communication volume below which an atom is *neutral*: it
    /// cannot open a boundary and attaches to the phase on its left.
    pub neutral_volume: f64,
}

/// The communication topology of one program segment.
#[derive(Debug, Clone)]
pub struct PhaseSignature {
    /// Residual shift volume per template axis.
    pub shift_by_axis: Vec<f64>,
    /// Residual general (axis/stride mismatch) volume.
    pub general: f64,
    /// Residual broadcast volume.
    pub broadcast: f64,
    /// The axis permutation each array is kept at (its source port's
    /// template-axis map under the segment's alignment).
    pub array_axes: BTreeMap<ArrayId, Vec<usize>>,
}

impl PhaseSignature {
    /// Align `segment` in isolation and measure its topology.
    pub fn of(segment: &Program, config: &PipelineConfig) -> PhaseSignature {
        let (adg, result) = align_program(segment, config);
        let model = CostModel::new(&adg);
        let shift_by_axis = model.shift_cost_by_axis(&result.alignment);
        let mut array_axes = BTreeMap::new();
        for (_, node) in adg.nodes() {
            if let NodeKind::Source { array } = node.kind {
                if let Some(&p) = node.output_ports().first() {
                    let map = result.alignment.port(p).axis_map.clone();
                    if !map.is_empty() {
                        array_axes.insert(array, map);
                    }
                }
            }
        }
        PhaseSignature {
            shift_by_axis,
            general: result.total_cost.general,
            broadcast: result.total_cost.broadcast,
            array_axes,
        }
    }

    /// Total residual communication volume of the segment.
    pub fn total_comm(&self) -> f64 {
        self.shift_by_axis.iter().sum::<f64>() + self.general + self.broadcast
    }

    /// The template axis carrying the most shift traffic, if any does.
    pub fn dominant_axis(&self) -> Option<usize> {
        let (axis, &best) = self
            .shift_by_axis
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))?;
        (best > 0.0).then_some(axis)
    }

    /// True when the two signatures cannot share a distribution: a shared
    /// array flips its axis permutation, or the dominant communication axis
    /// moves between them.
    pub fn conflicts_with(&self, other: &PhaseSignature) -> bool {
        for (array, map) in &self.array_axes {
            if let Some(other_map) = other.array_axes.get(array) {
                if map != other_map {
                    return true;
                }
            }
        }
        match (self.dominant_axis(), other.dominant_axis()) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        }
    }
}

/// Detect phase boundaries: positions `b` (0 < b < #statements) where a cut
/// between top-level statements `b-1` and `b` separates conflicting
/// communication topologies. Returns an empty vector for single-phase
/// programs.
pub fn detect_phase_boundaries(program: &Program, config: &SegmentationConfig) -> Vec<usize> {
    let n = program.num_top_level_stmts();
    if n < 2 {
        return Vec::new();
    }
    let signatures: Vec<PhaseSignature> = (0..n)
        .map(|i| PhaseSignature::of(&program.subprogram(i..i + 1), &config.alignment))
        .collect();

    let mut boundaries = Vec::new();
    // The signature the current phase is committed to: the last atom with
    // enough communication to have an opinion.
    let mut current: Option<&PhaseSignature> = None;
    for (i, sig) in signatures.iter().enumerate() {
        if sig.total_comm() <= config.neutral_volume {
            continue; // neutral: rides with the phase on its left
        }
        if let Some(prev) = current {
            if prev.conflicts_with(sig) {
                boundaries.push(i);
            }
        }
        current = Some(sig);
    }
    boundaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_ir::programs;

    #[test]
    fn fft_like_splits_into_two_phases() {
        let p = programs::fft_like(16, 4);
        let cfg = SegmentationConfig::default();
        let boundaries = detect_phase_boundaries(&p, &cfg);
        assert_eq!(boundaries, vec![1], "row phase | column phase");
        let sigs: Vec<PhaseSignature> = (0..2)
            .map(|i| PhaseSignature::of(&p.subprogram(i..i + 1), &cfg.alignment))
            .collect();
        assert_eq!(sigs[0].dominant_axis(), Some(1), "{:?}", sigs[0]);
        assert_eq!(sigs[1].dominant_axis(), Some(0), "{:?}", sigs[1]);
    }

    #[test]
    fn single_phase_programs_have_no_boundaries() {
        let cfg = SegmentationConfig::default();
        assert!(detect_phase_boundaries(&programs::example1(32), &cfg).is_empty());
        assert!(detect_phase_boundaries(&programs::figure1(16), &cfg).is_empty());
    }

    #[test]
    fn neutral_atoms_do_not_open_boundaries() {
        // stencil2d's single loop is one atom; appending it to itself via
        // subprogram tricks is not possible here, so check a program of two
        // identical loops instead: same topology, no boundary.
        let p = programs::fft_like(16, 4);
        let first = p.subprogram(0..1);
        let cfg = SegmentationConfig::default();
        assert!(detect_phase_boundaries(&first, &cfg).is_empty());
    }
}
