//! Phase partitioning: where does the communication topology change?
//!
//! The unit of segmentation is the *distributable atom*
//! ([`align_ir::fission`]): a top-level statement, or one piece of a loop
//! that loop distribution fissioned — so a topology flip buried inside a
//! distribution-safe loop body becomes a cuttable seam. Each atom is
//! analysed **once**, as a one-statement program, into an [`AtomAnalysis`]
//! carrying its aligned ADG, its [`PhaseSignature`], and its def/use sets;
//! every downstream consumer (boundary detection, per-phase candidate
//! ranking, boundary pricing, simulation) reads from that single analysis —
//! no atom is ever aligned twice (`alignment_core::pipeline::align_call_count`
//! proves it in the regression tests).
//!
//! The signature captures:
//!
//! * the residual shift volume per template axis (from the edge weights —
//!   which axis does data move along?),
//! * the residual general/broadcast volume,
//! * the axis permutation each array is kept at (from the aligned source
//!   ports — a transpose-heavy atom flips these).
//!
//! Consecutive atoms *conflict* when a shared array changes its axis
//! permutation or when the dominant communication axis moves; each conflict
//! is a phase boundary. Atoms with no residual communication are neutral and
//! attach to the phase on their left, so a communication-free copy between
//! two hostile phases does not multiply the phase count.

use adg::{Adg, NodeKind};
use align_ir::fission::{arrays_assigned, arrays_read};
use align_ir::{ArrayId, Program};
use alignment_core::pipeline::{align_program, AlignmentResult, PipelineConfig};
use alignment_core::CostModel;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the phase detector.
#[derive(Debug, Clone, Default)]
pub struct SegmentationConfig {
    /// Alignment configuration used when analysing each atom in isolation.
    pub alignment: PipelineConfig,
    /// Residual communication volume below which an atom is *neutral*: it
    /// cannot open a boundary and attaches to the phase on its left.
    pub neutral_volume: f64,
}

/// The communication topology of one program segment.
#[derive(Debug, Clone)]
pub struct PhaseSignature {
    /// Residual shift volume per template axis.
    pub shift_by_axis: Vec<f64>,
    /// Residual general (axis/stride mismatch) volume.
    pub general: f64,
    /// Residual broadcast volume.
    pub broadcast: f64,
    /// The axis permutation each array is kept at (its source port's
    /// template-axis map under the segment's alignment).
    pub array_axes: BTreeMap<ArrayId, Vec<usize>>,
}

impl PhaseSignature {
    /// Measure the topology of an already-aligned segment. This is the
    /// single-analysis entry point: the pipeline aligns each atom once and
    /// derives the signature (and everything else) from that result.
    pub fn from_parts(adg: &Adg, result: &AlignmentResult) -> PhaseSignature {
        let model = CostModel::new(adg);
        let shift_by_axis = model.shift_cost_by_axis(&result.alignment);
        let mut array_axes = BTreeMap::new();
        for (_, node) in adg.nodes() {
            if let NodeKind::Source { array } = node.kind {
                if let Some(&p) = node.output_ports().first() {
                    let map = result.alignment.port(p).axis_map.clone();
                    if !map.is_empty() {
                        array_axes.insert(array, map);
                    }
                }
            }
        }
        PhaseSignature {
            shift_by_axis,
            general: result.total_cost.general,
            broadcast: result.total_cost.broadcast,
            array_axes,
        }
    }

    /// Align `segment` in isolation and measure its topology (convenience
    /// wrapper over [`PhaseSignature::from_parts`] for callers outside the
    /// single-analysis pipeline).
    pub fn of(segment: &Program, config: &PipelineConfig) -> PhaseSignature {
        let (adg, result) = align_program(segment, config);
        PhaseSignature::from_parts(&adg, &result)
    }

    /// Total residual communication volume of the segment.
    pub fn total_comm(&self) -> f64 {
        self.shift_by_axis.iter().sum::<f64>() + self.general + self.broadcast
    }

    /// The template axis carrying the most shift traffic, if any does.
    pub fn dominant_axis(&self) -> Option<usize> {
        let (axis, &best) = self
            .shift_by_axis
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))?;
        (best > 0.0).then_some(axis)
    }

    /// True when the two signatures cannot share a distribution: a shared
    /// array flips its axis permutation, or the dominant communication axis
    /// moves between them.
    pub fn conflicts_with(&self, other: &PhaseSignature) -> bool {
        for (array, map) in &self.array_axes {
            if let Some(other_map) = other.array_axes.get(array) {
                if map != other_map {
                    return true;
                }
            }
        }
        match (self.dominant_axis(), other.dominant_axis()) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        }
    }
}

/// Everything the pipeline ever needs to know about one atom, computed by a
/// **single** alignment pass. Detection reads [`AtomAnalysis::signature`],
/// candidate ranking prices distributions against [`AtomAnalysis::adg`] +
/// [`AtomAnalysis::alignment`], boundary pricing reads the resting port
/// alignments, and the simulator replays the same ADG — none of them
/// re-align.
#[derive(Debug, Clone)]
pub struct AtomAnalysis {
    /// Index of the originating top-level statement.
    pub stmt_index: usize,
    /// Which fission piece of that statement this is (0 = unsplit).
    pub piece: usize,
    /// The atom as a standalone one-statement program.
    pub program: Program,
    /// Its ADG.
    pub adg: Adg,
    /// Its alignment (the one and only alignment pass over this atom).
    pub alignment: AlignmentResult,
    /// Its communication-topology signature, derived from `alignment`.
    pub signature: PhaseSignature,
    /// Arrays the atom reads or assigns.
    pub referenced: BTreeSet<ArrayId>,
}

impl AtomAnalysis {
    /// True when the atom reads or assigns `array`.
    pub fn references(&self, array: ArrayId) -> bool {
        self.referenced.contains(&array)
    }
}

/// Analyse every distributable atom of `program` exactly once: fission,
/// align, and derive the signature and def/use sets. The returned vector is
/// the substrate of the whole phase pipeline.
pub fn analyze_atoms(program: &Program, config: &PipelineConfig) -> Vec<AtomAnalysis> {
    let _span = trace::span("phases.analyze_atoms");
    let atoms = program.distributable_atoms();
    trace::count("phases.atoms_analyzed", atoms.len() as u64);
    // Atoms are aligned independently, so the per-atom alignment passes fan
    // out over the pool. Results come back in atom order and each worker's
    // counter delta (`lp.*`, `adg.*`) is absorbed, so every gated counter
    // total is bitwise-identical to a serial run at any worker count.
    pool::map(atoms.len(), |i| {
        let atom = &atoms[i];
        let sub = program.from_atoms(std::slice::from_ref(atom));
        let (adg, alignment) = align_program(&sub, config);
        let signature = PhaseSignature::from_parts(&adg, &alignment);
        let mut referenced = arrays_read(&sub.body, &sub);
        referenced.extend(arrays_assigned(&sub.body));
        AtomAnalysis {
            stmt_index: atom.stmt_index,
            piece: atom.piece,
            program: sub,
            adg,
            alignment,
            signature,
            referenced,
        }
    })
}

/// Detect phase boundaries over an already-analysed atom sequence: positions
/// `b` (0 < b < #atoms) where a cut between atoms `b-1` and `b` separates
/// conflicting communication topologies. Returns an empty vector for
/// single-phase programs.
pub fn detect_boundaries(atoms: &[AtomAnalysis], config: &SegmentationConfig) -> Vec<usize> {
    let _span = trace::span("phases.detect_boundaries");
    let mut boundaries = Vec::new();
    // The signature the current phase is committed to: the last atom with
    // enough communication to have an opinion.
    let mut current: Option<&PhaseSignature> = None;
    for (i, atom) in atoms.iter().enumerate() {
        let sig = &atom.signature;
        if sig.total_comm() <= config.neutral_volume {
            continue; // neutral: rides with the phase on its left
        }
        if let Some(prev) = current {
            if prev.conflicts_with(sig) && i > 0 {
                boundaries.push(i);
            }
        }
        current = Some(sig);
    }
    trace::count("phases.seams_proposed", boundaries.len() as u64);
    boundaries
}

/// Detect phase boundaries of a program from scratch: fission into atoms,
/// analyse each once, and cut where topologies conflict. Boundary indices
/// refer to the **atom** sequence ([`Program::distributable_atoms`]), which
/// is finer than the top-level statement sequence when loop distribution
/// splits a loop.
pub fn detect_phase_boundaries(program: &Program, config: &SegmentationConfig) -> Vec<usize> {
    let atoms = analyze_atoms(program, &config.alignment);
    detect_boundaries(&atoms, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_ir::programs;

    #[test]
    fn fft_like_splits_into_two_phases() {
        let p = programs::fft_like(16, 4);
        let cfg = SegmentationConfig::default();
        let boundaries = detect_phase_boundaries(&p, &cfg);
        assert_eq!(boundaries, vec![1], "row phase | column phase");
        let sigs: Vec<PhaseSignature> = (0..2)
            .map(|i| PhaseSignature::of(&p.subprogram(i..i + 1), &cfg.alignment))
            .collect();
        assert_eq!(sigs[0].dominant_axis(), Some(1), "{:?}", sigs[0]);
        assert_eq!(sigs[1].dominant_axis(), Some(0), "{:?}", sigs[1]);
    }

    #[test]
    fn nested_flip_boundary_is_found_inside_the_loop_body() {
        // The program is a single top-level loop; only loop distribution
        // exposes the row | column seam inside its body.
        let p = programs::fft_like_nested(16, 4);
        assert_eq!(p.num_top_level_stmts(), 1);
        let cfg = SegmentationConfig::default();
        let atoms = analyze_atoms(&p, &cfg.alignment);
        assert_eq!(atoms.len(), 2, "fission split the loop");
        assert_eq!(detect_boundaries(&atoms, &cfg), vec![1]);
        assert_eq!(atoms[0].signature.dominant_axis(), Some(1));
        assert_eq!(atoms[1].signature.dominant_axis(), Some(0));
    }

    #[test]
    fn single_phase_programs_have_no_boundaries() {
        let cfg = SegmentationConfig::default();
        assert!(detect_phase_boundaries(&programs::example1(32), &cfg).is_empty());
        assert!(detect_phase_boundaries(&programs::figure1(16), &cfg).is_empty());
    }

    #[test]
    fn neutral_atoms_do_not_open_boundaries() {
        // stencil2d's single loop is one atom; appending it to itself via
        // subprogram tricks is not possible here, so check a program of two
        // identical loops instead: same topology, no boundary.
        let p = programs::fft_like(16, 4);
        let first = p.subprogram(0..1);
        let cfg = SegmentationConfig::default();
        assert!(detect_phase_boundaries(&first, &cfg).is_empty());
    }

    #[test]
    fn atom_analyses_carry_def_use_sets() {
        let p = programs::fft_like_nested(16, 4);
        let atoms = analyze_atoms(&p, &PipelineConfig::default());
        let a = p.array_by_name("A").unwrap();
        let b = p.array_by_name("B").unwrap();
        let d = p.array_by_name("D").unwrap();
        assert!(atoms[0].references(a) && atoms[0].references(d));
        assert!(!atoms[0].references(b));
        assert!(atoms[1].references(b) && atoms[1].references(d));
        assert!(!atoms[1].references(a));
    }
}
