//! Basis-kernel A/B lock: the simplex basis-inverse kernel (sparse LU with
//! Forrest–Tomlin updates vs the historical product-form eta file) changes
//! how the basis inverse is applied. The kernels' roundoff differs, so
//! degenerate ties may break differently and the pivot *route* may diverge
//! (`lp.*` work counters move) — but both routes must land on the same
//! optima and rounded offsets, and therefore never change what the
//! pipeline *decides*.
//! Every phase workload is solved end-to-end under both kernels and the
//! plans are compared bit-for-bit: chosen candidate indices, per-phase
//! distributions, every redistribution step, the planned cost, and the
//! static baseline. On top of the plan, every non-`lp.*` counter family
//! (`phases.*`, `align.*`, `distrib.*`, `commsim.*`, ...) must be
//! bitwise-identical between the two runs — the contract that confines the
//! counter gate's divergences to `lp.*` work counters.

use align_ir::programs;
use alignment_core::Kernel;
use phases::{align_then_distribute_dynamic, DynamicConfig};

const NPROCS: usize = 8;

fn solve(
    program: &align_ir::ast::Program,
    kernel: Kernel,
) -> (phases::DynamicPipelineResult, trace::CounterSnapshot) {
    let mut config = DynamicConfig::default();
    config.alignment.offset.kernel = kernel;
    let before = trace::CounterSnapshot::now();
    let result = align_then_distribute_dynamic(program, NPROCS, &config);
    let delta = trace::CounterSnapshot::now().delta_since(&before);
    (result, delta)
}

#[test]
fn sparse_lu_and_eta_file_produce_identical_plans() {
    for (name, program) in programs::phase_workloads() {
        let (lu, lu_counters) = solve(&program, Kernel::SparseLu);
        let (eta, eta_counters) = solve(&program, Kernel::EtaFile);

        // The dynamic plan: same candidate choices, same instantiated
        // per-phase distributions, same planned cost to the last bit.
        assert_eq!(
            lu.dynamic.chosen, eta.dynamic.chosen,
            "{name}: chosen candidates differ"
        );
        assert_eq!(
            lu.dynamic.per_phase, eta.dynamic.per_phase,
            "{name}: per-phase distributions differ"
        );
        assert_eq!(
            lu.dynamic.planned_cost.to_bits(),
            eta.dynamic.planned_cost.to_bits(),
            "{name}: planned cost differs ({} vs {})",
            lu.dynamic.planned_cost,
            eta.dynamic.planned_cost
        );

        // Every redistribution step: same arrays, same source phases, same
        // exact element cost.
        assert_eq!(
            lu.dynamic.steps.len(),
            eta.dynamic.steps.len(),
            "{name}: boundary count differs"
        );
        for (b, (sa, sb)) in lu.dynamic.steps.iter().zip(&eta.dynamic.steps).enumerate() {
            assert_eq!(sa.len(), sb.len(), "{name}: step count at boundary {b}");
            for (x, y) in sa.iter().zip(sb) {
                assert_eq!(x.array, y.array, "{name}: stepped array at boundary {b}");
                assert_eq!(
                    x.src_phase, y.src_phase,
                    "{name}: source phase of {} at boundary {b}",
                    x.name
                );
                assert_eq!(
                    x.cost.elements().to_bits(),
                    y.cost.elements().to_bits(),
                    "{name}: step cost of {} at boundary {b}",
                    x.name
                );
            }
        }

        // The static baseline: same winning distribution, same simulated
        // cost.
        assert_eq!(
            lu.static_result.best().distribution,
            eta.static_result.best().distribution,
            "{name}: static distribution differs"
        );
        assert_eq!(
            lu.static_planned_cost.to_bits(),
            eta.static_planned_cost.to_bits(),
            "{name}: static planned cost differs"
        );

        // Every counter outside `lp.*` — the kernel's own work counters —
        // must be bitwise-unchanged: same plan, same pipeline activity down
        // to the last alignment call and sampled element. (`lp.*` itself is
        // exempt: the kernels' pivot routes may differ on degenerate ties.)
        let families = |snap: &trace::CounterSnapshot| {
            snap.counters
                .iter()
                .filter(|(k, _)| !k.starts_with("lp."))
                .map(|(k, &v)| (k.clone(), v))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            families(&lu_counters),
            families(&eta_counters),
            "{name}: a non-lp.* counter changed with the kernel"
        );
    }
}
