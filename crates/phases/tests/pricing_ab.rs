//! Pricing-rule A/B lock: the simplex pricing rule (Devex vs Dantzig) may
//! change how many pivots the LP spends, but it must never change what the
//! pipeline *decides*. Every phase workload is solved end-to-end under both
//! rules and the plans are compared bit-for-bit: chosen candidate indices,
//! per-phase distributions, every redistribution step, the planned cost,
//! and the static baseline. This is the contract that lets the counter
//! gate's divergences stay confined to `lp.*` work counters.

use align_ir::programs;
use alignment_core::PricingRule;
use phases::{align_then_distribute_dynamic, DynamicConfig};

const NPROCS: usize = 8;

fn solve(program: &align_ir::ast::Program, rule: PricingRule) -> phases::DynamicPipelineResult {
    let mut config = DynamicConfig::default();
    config.alignment.offset.pricing = rule;
    align_then_distribute_dynamic(program, NPROCS, &config)
}

#[test]
fn devex_and_dantzig_produce_identical_plans() {
    for (name, program) in programs::phase_workloads() {
        let devex = solve(&program, PricingRule::Devex);
        let dantzig = solve(&program, PricingRule::Dantzig);

        // The dynamic plan: same candidate choices, same instantiated
        // per-phase distributions, same planned cost to the last bit.
        assert_eq!(
            devex.dynamic.chosen, dantzig.dynamic.chosen,
            "{name}: chosen candidates differ"
        );
        assert_eq!(
            devex.dynamic.per_phase, dantzig.dynamic.per_phase,
            "{name}: per-phase distributions differ"
        );
        assert_eq!(
            devex.dynamic.planned_cost.to_bits(),
            dantzig.dynamic.planned_cost.to_bits(),
            "{name}: planned cost differs ({} vs {})",
            devex.dynamic.planned_cost,
            dantzig.dynamic.planned_cost
        );

        // Every redistribution step: same arrays, same source phases, same
        // exact element cost.
        assert_eq!(
            devex.dynamic.steps.len(),
            dantzig.dynamic.steps.len(),
            "{name}: boundary count differs"
        );
        for (b, (sa, sb)) in devex
            .dynamic
            .steps
            .iter()
            .zip(&dantzig.dynamic.steps)
            .enumerate()
        {
            assert_eq!(sa.len(), sb.len(), "{name}: step count at boundary {b}");
            for (x, y) in sa.iter().zip(sb) {
                assert_eq!(x.array, y.array, "{name}: stepped array at boundary {b}");
                assert_eq!(
                    x.src_phase, y.src_phase,
                    "{name}: source phase of {} at boundary {b}",
                    x.name
                );
                assert_eq!(
                    x.cost.elements().to_bits(),
                    y.cost.elements().to_bits(),
                    "{name}: step cost of {} at boundary {b}",
                    x.name
                );
            }
        }

        // The static baseline: same winning distribution, same simulated
        // cost.
        assert_eq!(
            devex.static_result.best().distribution,
            dantzig.static_result.best().distribution,
            "{name}: static distribution differs"
        );
        assert_eq!(
            devex.static_planned_cost.to_bits(),
            dantzig.static_planned_cost.to_bits(),
            "{name}: static planned cost differs"
        );
    }
}
