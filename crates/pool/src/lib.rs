//! A tiny scoped thread pool for pricing work, std-only.
//!
//! The phase pipeline prices many independent cells — per-atom analyses,
//! per-phase candidate matrices, per-(boundary, array, signature,
//! signature) redistribution costs. Each cell is pure compute over shared
//! read-only inputs, so they parallelise trivially; what does *not*
//! parallelise trivially is the metrics contract: the `trace` counters are
//! thread-local, always on, and regression-gated to be **bitwise identical
//! across runs** — and, for this crate, across worker counts.
//!
//! Determinism is preserved by construction rather than by locking:
//!
//! * **Pre-indexed result slots.** [`map`] writes task `i`'s result into
//!   slot `i`, so downstream float accumulation visits results in task
//!   order no matter which worker computed what, or when.
//! * **Counter deltas, not shared counters.** Every spawned worker is a
//!   fresh thread whose thread-local counters start at zero; at exit it
//!   snapshots them ([`trace::CounterSnapshot::now`]) and the caller
//!   [absorbs](trace::absorb) the snapshot. Counter addition is
//!   commutative, so totals are bitwise-equal to a serial run.
//! * **Serial fallback.** With one worker ([`workers`] ≤ 1 — the default
//!   on a single-core host and forcible via `POOL_WORKERS=1`), a single
//!   task, or spans enabled (spans are thread-local; a worker's spans
//!   would be lost, so profiled runs stay on one thread and remain
//!   faithful), the closures run inline on the caller in task order —
//!   the exact pre-pool behaviour.
//!
//! There is no work *stealing* — just an atomic next-task cursor that
//! workers (the caller included) claim indices from. Threads are scoped
//! ([`std::thread::scope`]): borrows of the caller's data work naturally
//! and nothing outlives the call.
//!
//! The worker count comes from, in priority order: [`set_workers`] (an
//! in-process override, used by the experiment sweeps), the `POOL_WORKERS`
//! environment variable, and [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// In-process override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the worker count for this process (0 clears the override and
/// falls back to `POOL_WORKERS` / detected parallelism). Used by the
/// experiment harness to sweep pool sizes without re-exec'ing.
pub fn set_workers(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// The number of workers a parallel region may use, including the calling
/// thread: [`set_workers`] override, else `POOL_WORKERS`, else
/// [`std::thread::available_parallelism`].
pub fn workers() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    let env = *ENV.get_or_init(|| {
        std::env::var("POOL_WORKERS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
    });
    if let Some(n) = env {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Should a region with `tasks` independent tasks run in parallel? False
/// with one worker, one task, or spans enabled (see the crate docs).
pub fn is_parallel(tasks: usize) -> bool {
    tasks > 1 && workers() > 1 && !trace::spans_enabled()
}

/// Compute `f(0), f(1), …, f(n-1)` and return the results in index order.
///
/// Serial fallback conditions (inline on the caller, task order): see the
/// crate docs. Otherwise tasks are claimed from an atomic cursor by
/// `min(workers, n)` threads (the caller participates); each result lands
/// in its pre-indexed slot and each worker's counter delta is absorbed
/// into the caller's collector, so counters and downstream accumulation
/// order are independent of the worker count.
pub fn map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if !is_parallel(n) {
        return (0..n).map(f).collect();
    }
    let extra = workers().min(n) - 1;
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..extra)
            .map(|_| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    // Fresh thread: the snapshot is exactly this worker's
                    // counter delta.
                    (out, trace::CounterSnapshot::now())
                })
            })
            .collect();
        let mut mine = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            mine.push((i, f(i)));
        }
        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
        for (i, v) in mine {
            slots[i] = Some(v);
        }
        for h in handles {
            let (items, delta) = h.join().expect("pool worker panicked");
            trace::absorb(&delta);
            for (i, v) in items {
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task index claimed exactly once"))
            .collect()
    })
}

/// Run two independent computations, `fb` on a worker thread when
/// parallelism is available; serially (`fa` then `fb`, inline) otherwise.
/// `fb`'s counter delta is absorbed before returning, so the caller's
/// totals match a serial run bitwise.
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A,
    FB: FnOnce() -> B + Send,
{
    if !is_parallel(2) {
        let a = fa();
        let b = fb();
        return (a, b);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(move || (fb(), trace::CounterSnapshot::now()));
        let a = fa();
        let (b, delta) = hb.join().expect("pool worker panicked");
        trace::absorb(&delta);
        (a, b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialise tests that touch the process-wide override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn map_returns_results_in_index_order() {
        let _g = LOCK.lock().unwrap();
        for w in [1, 2, 4, 8] {
            set_workers(w);
            let out = map(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
        set_workers(0);
    }

    #[test]
    fn map_counter_totals_are_identical_across_worker_counts() {
        let _g = LOCK.lock().unwrap();
        let run = |w: usize| {
            set_workers(w);
            trace::reset();
            let _ = map(64, |i| {
                trace::count("pooltest.cells", 1);
                trace::count("pooltest.weight", i as u64);
                trace::record_value("pooltest.size", i as f64);
                i
            });
            let snap = trace::CounterSnapshot::now();
            trace::reset();
            snap
        };
        let serial = run(1);
        for w in [2, 4, 8] {
            let par = run(w);
            assert_eq!(
                par.counters, serial.counters,
                "counters diverged at {w} workers"
            );
            let (s, p) = (serial.dists["pooltest.size"], par.dists["pooltest.size"]);
            assert_eq!(p.count, s.count);
            assert_eq!(p.min, s.min);
            assert_eq!(p.max, s.max);
            assert_eq!(p.buckets, s.buckets);
        }
        set_workers(0);
    }

    #[test]
    fn join_runs_both_and_absorbs_counters() {
        let _g = LOCK.lock().unwrap();
        for w in [1, 4] {
            set_workers(w);
            trace::reset();
            let (a, b) = join(
                || {
                    trace::count("pooltest.join_a", 1);
                    7
                },
                || {
                    trace::count("pooltest.join_b", 1);
                    11
                },
            );
            assert_eq!((a, b), (7, 11));
            assert_eq!(trace::counter("pooltest.join_a"), 1);
            assert_eq!(trace::counter("pooltest.join_b"), 1);
            trace::reset();
        }
        set_workers(0);
    }

    #[test]
    fn spans_enabled_forces_serial() {
        let _g = LOCK.lock().unwrap();
        set_workers(8);
        trace::configure(trace::TraceConfig::enabled());
        assert!(!is_parallel(100));
        // Inline execution: spans recorded inside tasks stay on this thread.
        trace::reset();
        let _ = map(3, |i| {
            let _s = trace::span("pooltest.task");
            i
        });
        assert_eq!(trace::span_count(), 3);
        trace::configure(trace::TraceConfig::default());
        trace::reset();
        set_workers(0);
    }

    #[test]
    fn zero_and_empty_maps_are_fine() {
        let _g = LOCK.lock().unwrap();
        set_workers(4);
        assert!(map(0, |i| i).is_empty());
        assert_eq!(map(1, |i| i), vec![0]);
        set_workers(0);
    }
}
