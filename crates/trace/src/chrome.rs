//! Chrome trace-event export.
//!
//! Renders a drained [`Trace`] as the JSON object format the
//! `chrome://tracing` / Perfetto UI loads: spans become complete (`"X"`)
//! duration events with microsecond timestamps, structured events become
//! instant (`"i"`) events, and every counter is emitted as one counter
//! (`"C"`) sample so the UI shows the final totals alongside the
//! timeline. The pipeline-layer prefix of each span name (`lp.`,
//! `phases.`, …) is the event category, so layers are filterable.
//!
//! [`export_env_trace`] is the one-call hook examples and CI use: when the
//! `TRACE_JSON` environment variable names a file, the current thread's
//! trace is written there — relative paths resolving against the
//! workspace root ([`crate::path`]), exactly like `BENCH_JSON`.

use crate::json::Json;
use crate::{EventRecord, SpanRecord, Trace};
use std::path::PathBuf;

fn layer_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

fn us(ns: u64) -> Json {
    Json::Num(ns as f64 / 1000.0)
}

fn span_event(s: &SpanRecord) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(s.name.into())),
        ("cat".into(), Json::Str(layer_of(s.name).into())),
        ("ph".into(), Json::Str("X".into())),
        ("ts".into(), us(s.start_ns)),
        ("dur".into(), us(s.dur_ns)),
        ("pid".into(), Json::Num(1.0)),
        ("tid".into(), Json::Num(1.0)),
        (
            "args".into(),
            Json::Obj(vec![("depth".into(), Json::Num(s.depth as f64))]),
        ),
    ])
}

fn instant_event(e: &EventRecord) -> Json {
    let args = e
        .args
        .iter()
        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
        .collect();
    Json::Obj(vec![
        ("name".into(), Json::Str(e.name.into())),
        ("cat".into(), Json::Str(layer_of(e.name).into())),
        ("ph".into(), Json::Str("i".into())),
        ("s".into(), Json::Str("t".into())),
        ("ts".into(), us(e.ts_ns)),
        ("pid".into(), Json::Num(1.0)),
        ("tid".into(), Json::Num(1.0)),
        ("args".into(), Json::Obj(args)),
    ])
}

fn counter_event(name: &str, value: u64, ts_ns: u64) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        ("cat".into(), Json::Str(layer_of(name).into())),
        ("ph".into(), Json::Str("C".into())),
        ("ts".into(), us(ts_ns)),
        ("pid".into(), Json::Num(1.0)),
        ("tid".into(), Json::Num(1.0)),
        (
            "args".into(),
            Json::Obj(vec![("value".into(), Json::Num(value as f64))]),
        ),
    ])
}

/// The trace as a `chrome://tracing`-loadable JSON document.
pub fn to_chrome_json(trace: &Trace) -> Json {
    let end_ns = trace
        .spans
        .iter()
        .map(|s| s.start_ns + s.dur_ns)
        .chain(trace.events.iter().map(|e| e.ts_ns))
        .max()
        .unwrap_or(0);
    let mut events: Vec<Json> = trace.spans.iter().map(span_event).collect();
    events.extend(trace.events.iter().map(instant_event));
    events.extend(
        trace
            .counters
            .iter()
            .map(|(name, &value)| counter_event(name, value, end_ns)),
    );
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
}

/// Write the trace to `path` (relative paths resolve against the
/// workspace root). Returns the path actually written.
pub fn write_chrome_trace(path: &str, trace: &Trace) -> std::io::Result<PathBuf> {
    let resolved = crate::path::resolve_output_path(path);
    if let Some(parent) = resolved.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&resolved, to_chrome_json(trace).to_string_pretty())?;
    Ok(resolved)
}

/// Drain the current thread's trace ([`crate::take`]) and, when the
/// `TRACE_JSON` environment variable names a file, write it there as a
/// Chrome trace. Returns the written path, or `None` when the variable is
/// unset/empty. Call once per run, after the work to be traced.
pub fn export_env_trace() -> std::io::Result<Option<PathBuf>> {
    let trace = crate::take();
    match std::env::var("TRACE_JSON") {
        Ok(path) if !path.is_empty() => write_chrome_trace(&path, &trace).map(Some),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::default();
        t.spans.push(SpanRecord {
            name: "phases.pipeline",
            start_ns: 1_000,
            dur_ns: 9_000,
            depth: 0,
            parent: None,
        });
        t.spans.push(SpanRecord {
            name: "lp.solve",
            start_ns: 2_000,
            dur_ns: 3_000,
            depth: 1,
            parent: Some(0),
        });
        t.events.push(EventRecord {
            name: "phases.boundary",
            ts_ns: 6_000,
            args: vec![("atom".into(), "1".into())],
        });
        t.counters.insert("lp.pivots".into(), 42);
        t
    }

    #[test]
    fn chrome_document_parses_and_has_all_event_kinds() {
        let doc = to_chrome_json(&sample_trace());
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 4);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases, vec!["X", "X", "i", "C"]);
        // Timestamps are microseconds.
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(9.0));
        assert_eq!(
            events[1].get("cat").unwrap().as_str(),
            Some("lp"),
            "category is the layer prefix"
        );
        assert_eq!(
            events[3]
                .get("args")
                .unwrap()
                .get("value")
                .unwrap()
                .as_f64(),
            Some(42.0)
        );
    }

    #[test]
    fn write_resolves_relative_paths_to_workspace_root() {
        let path = "target/test-traces/chrome_trace_unit.json";
        let written = write_chrome_trace(path, &sample_trace()).unwrap();
        assert!(written.is_absolute() || written.starts_with(crate::path::workspace_root()));
        assert!(written.ends_with(path));
        let text = std::fs::read_to_string(&written).unwrap();
        assert!(Json::parse(&text).is_ok());
        std::fs::remove_file(&written).ok();
    }
}
