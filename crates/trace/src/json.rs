//! Dependency-free JSON: a tiny value model, parser and writer.
//!
//! The container building this repository has no registry access, so serde
//! is out of reach; the subset implemented here (objects, arrays, strings
//! with escapes, finite numbers, booleans, null) is exactly what the
//! benchmark and trace files need. This module started life as
//! `bench::json` and moved here so the Chrome-trace exporter
//! ([`crate::chrome`]) and the bench harness share one implementation
//! (`bench::json` re-exports it, and keeps the benchmark-record schema).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialise compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialise with two-space indentation (stable diffs for committed
    /// baselines).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex =
                                    b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (multi-byte sequences pass
                        // through unchanged).
                        let start = *pos;
                        let mut end = start + 1;
                        while end < b.len() && (b[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        s.push_str(std::str::from_utf8(&b[start..end]).map_err(|e| e.to_string())?);
                        *pos = end;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v =
            Json::parse(r#"{"a": [1, 2.5, -3e2], "s": "x\n\"y\"", "b": true, "n": null}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "x\n\"y\"");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("[] trailing").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let v = Json::parse(r#""µs and µs""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "µs and µs");
        let out = Json::Str("µs".into()).to_string_compact();
        assert_eq!(Json::parse(&out).unwrap().as_str().unwrap(), "µs");
    }

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("b".into(), Json::Str("x".into())),
        ]);
        assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }
}
