//! Pipeline-wide tracing and metrics.
//!
//! Every layer of the alignment pipeline (`lp`, `alignment-core`,
//! `distrib`, `phases`, `commsim`) reports into this crate so a solve
//! leaves behind a structured, machine-readable account of what it did:
//!
//! * **Spans** — hierarchical timed regions ([`span`] returns an RAII
//!   guard; a thread-local stack tracks nesting, a monotonic clock tracks
//!   time). Spans are **off by default** and enabled per thread via
//!   [`configure`]; a disabled [`span`] call is a single thread-local flag
//!   read, so the gated benches measure the uninstrumented pipeline.
//! * **Counters** — named monotonic `u64`s ([`count`]). Counters are
//!   *always on*: they are the same cheap thread-local increments the
//!   pre-trace ad-hoc counters (`align_call_count`, `fallback_stats`)
//!   already paid, regression tests assert on them, and identical solves
//!   produce identical values.
//! * **Distributions** — named value histograms ([`record_value`]):
//!   count/sum/min/max plus power-of-two buckets, e.g. DP layer widths.
//! * **Events** — timestamped key=value facts ([`event`]), recorded only
//!   while spans are enabled.
//!
//! Everything is thread-local (like the counters this crate replaced), so
//! parallel test threads never interfere. [`take`] drains the current
//! thread's spans and events into a [`Trace`] for export —
//! [`chrome::to_chrome_json`] renders one as a `chrome://tracing`-loadable
//! trace-event file, honouring the `TRACE_JSON` environment variable (with
//! relative paths resolved against the workspace root, see [`path`]).
//!
//! Naming convention: `layer.metric` (`lp.pivots`,
//! `phases.dp.layer_width`, …). The segment before the first `.` is the
//! pipeline layer; the Chrome exporter uses it as the event category.

pub mod chrome;
pub mod json;
pub mod path;
pub mod profile;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::time::Instant;

/// What the tracing layer records. Counters and distributions are always
/// on (cheap thread-local increments); spans and events are opt-in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record timed spans and structured events. Off by default: with
    /// spans disabled, [`span`] is a single thread-local flag read and no
    /// clock is touched — the gated benches run the uninstrumented
    /// pipeline.
    pub spans: bool,
}

impl TraceConfig {
    /// Spans and events on.
    pub fn enabled() -> TraceConfig {
        TraceConfig { spans: true }
    }
}

thread_local! {
    static SPANS_ENABLED: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::new());
}

/// Apply `config` to the **current thread** (tracing state is thread-local
/// throughout, so parallel test threads never observe each other).
pub fn configure(config: TraceConfig) {
    SPANS_ENABLED.with(|c| c.set(config.spans));
}

/// Whether spans and events are currently recorded on this thread.
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.with(Cell::get)
}

/// One completed (or still-open) timed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, `layer.operation` by convention.
    pub name: &'static str,
    /// Start, nanoseconds since the thread's trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (elapsed-so-far for spans still open when
    /// the trace is taken).
    pub dur_ns: u64,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Index of the enclosing span within the same trace, if any.
    pub parent: Option<usize>,
}

/// One timestamped structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Event name, `layer.what` by convention.
    pub name: &'static str,
    /// Timestamp, nanoseconds since the thread's trace epoch.
    pub ts_ns: u64,
    /// Key=value payload.
    pub args: Vec<(String, String)>,
}

/// Number of power-of-two buckets a [`Histogram`] keeps (bucket `i` counts
/// values `v` with `floor(log2(max(v,1))) == i`; the last bucket absorbs
/// everything larger).
pub const HISTOGRAM_BUCKETS: usize = 48;

/// A value distribution: count/sum/min/max plus power-of-two buckets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Power-of-two buckets (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let magnitude = value.max(1.0) as u64;
        let bucket = (63 - magnitude.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fold another histogram into this one, as if every value `other`
    /// recorded had been recorded here too (bucket-wise add; min/max fold;
    /// the empty histogram is the identity).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

struct Collector {
    epoch: Option<Instant>,
    spans: Vec<SpanRecord>,
    stack: Vec<usize>,
    events: Vec<EventRecord>,
    counters: BTreeMap<&'static str, u64>,
    dists: BTreeMap<&'static str, Histogram>,
}

impl Collector {
    fn new() -> Collector {
        Collector {
            epoch: None,
            spans: Vec::new(),
            stack: Vec::new(),
            events: Vec::new(),
            counters: BTreeMap::new(),
            dists: BTreeMap::new(),
        }
    }

    fn now_ns(&mut self) -> u64 {
        let epoch = self.epoch.get_or_insert_with(Instant::now);
        epoch.elapsed().as_nanos() as u64
    }
}

/// RAII guard of one timed span: the span covers the guard's lifetime.
/// With spans disabled the guard is inert and constructing it did no work
/// beyond one thread-local flag read.
#[must_use = "a span covers the guard's lifetime; dropping it immediately closes the span"]
pub struct SpanGuard {
    idx: Option<usize>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(idx) = self.idx else { return };
        COLLECTOR.with(|c| {
            let mut c = c.borrow_mut();
            let now = c.now_ns();
            if let Some(pos) = c.stack.iter().rposition(|&i| i == idx) {
                c.stack.truncate(pos);
            }
            if let Some(rec) = c.spans.get_mut(idx) {
                rec.dur_ns = now.saturating_sub(rec.start_ns);
            }
        });
    }
}

/// Open a timed span named `name` (convention: `layer.operation`). The
/// span closes when the returned guard drops. No-op (and near-free) unless
/// spans were enabled via [`configure`].
pub fn span(name: &'static str) -> SpanGuard {
    if !spans_enabled() {
        return SpanGuard { idx: None };
    }
    let idx = COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let start_ns = c.now_ns();
        let parent = c.stack.last().copied();
        let depth = c.stack.len();
        let idx = c.spans.len();
        c.spans.push(SpanRecord {
            name,
            start_ns,
            dur_ns: 0,
            depth,
            parent,
        });
        c.stack.push(idx);
        idx
    });
    SpanGuard { idx: Some(idx) }
}

/// Bump the named monotonic counter by `delta`. Always on.
pub fn count(name: &'static str, delta: u64) {
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        *c.counters.entry(name).or_insert(0) += delta;
    });
}

/// Record one value into the named distribution. Always on.
pub fn record_value(name: &'static str, value: f64) {
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        c.dists.entry(name).or_default().record(value);
    });
}

/// Record a structured key=value event (only while spans are enabled).
pub fn event(name: &'static str, args: &[(&str, String)]) {
    if !spans_enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let ts_ns = c.now_ns();
        let args = args
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect();
        c.events.push(EventRecord { name, ts_ns, args });
    });
}

/// Current value of the named counter (0 if it never fired).
pub fn counter(name: &str) -> u64 {
    COLLECTOR.with(|c| c.borrow().counters.get(name).copied().unwrap_or(0))
}

/// Current state of the named distribution, if it ever recorded.
pub fn distribution(name: &str) -> Option<Histogram> {
    COLLECTOR.with(|c| c.borrow().dists.get(name).copied())
}

/// Number of spans recorded on this thread since the last [`reset`] /
/// [`take`].
pub fn span_count() -> usize {
    COLLECTOR.with(|c| c.borrow().spans.len())
}

/// Zero one counter (compatibility shims for the pre-trace per-counter
/// reset functions; prefer [`CounterSnapshot`] deltas in new code).
pub fn reset_counter(name: &str) {
    COLLECTOR.with(|c| {
        c.borrow_mut().counters.remove(name);
    });
}

/// Clear everything recorded on this thread: spans, events, counters,
/// distributions and the trace epoch.
pub fn reset() {
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        *c = Collector::new();
    });
}

/// A point-in-time copy of every counter and distribution on this thread.
/// Subtract two snapshots ([`CounterSnapshot::delta_since`]) to attribute
/// activity to a region of code — the pattern the bench harness and the
/// phase pipeline's solve summary use.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterSnapshot {
    /// Counter name → value, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Distribution name → state, sorted by name.
    pub dists: BTreeMap<String, Histogram>,
}

impl CounterSnapshot {
    /// Snapshot the current thread.
    pub fn now() -> CounterSnapshot {
        COLLECTOR.with(|c| {
            let c = c.borrow();
            CounterSnapshot {
                counters: c
                    .counters
                    .iter()
                    .map(|(&k, &v)| (k.to_owned(), v))
                    .collect(),
                dists: c.dists.iter().map(|(&k, &v)| (k.to_owned(), v)).collect(),
            }
        })
    }

    /// Value of a counter in this snapshot (0 when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counter-wise difference `self - earlier` (distributions keep the
    /// later state; counts that shrank — only possible across a reset —
    /// clamp to zero).
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.get(k))))
            .filter(|(_, v)| *v > 0)
            .collect();
        CounterSnapshot {
            counters,
            dists: self.dists.clone(),
        }
    }
}

/// Merge a [`CounterSnapshot`] *delta* into the current thread's collector:
/// every counter is added and every distribution is
/// [merged](Histogram::merge), as if the work the delta describes had run
/// on this thread. This is how worker threads hand their metrics back to
/// the thread that spawned them (see the `pool` crate): a worker snapshots
/// its own fresh thread-locals at exit and the caller absorbs them, so
/// counter totals are independent of how work was split across threads.
///
/// Counter addition is commutative, so absorbing worker deltas in any
/// order yields bitwise-identical `u64` totals to running the same work
/// serially. (Histogram `sum`s are `f64` and may differ in the last ulp
/// across merge orders; no gate asserts on them.)
pub fn absorb(delta: &CounterSnapshot) {
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        for (name, &v) in &delta.counters {
            if v > 0 {
                *c.counters.entry(intern(name)).or_insert(0) += v;
            }
        }
        for (name, h) in &delta.dists {
            if h.count > 0 {
                c.dists.entry(intern(name)).or_default().merge(h);
            }
        }
    });
}

/// Collector keys are `&'static str` (every production call site passes a
/// literal); snapshot keys are owned strings. Absorbing a snapshot interns
/// each name once — the set of metric names is a small fixed vocabulary,
/// so the leaked bytes are bounded.
fn intern(name: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut set = INTERNED.lock().unwrap();
    match set.get(name) {
        Some(&s) => s,
        None => {
            let s: &'static str = Box::leak(name.to_owned().into_boxed_str());
            set.insert(s);
            s
        }
    }
}

/// A drained trace: everything one thread recorded, ready for export.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Completed spans in start order (open spans are closed at the drain
    /// instant).
    pub spans: Vec<SpanRecord>,
    /// Structured events in record order.
    pub events: Vec<EventRecord>,
    /// Counter values at drain time.
    pub counters: BTreeMap<String, u64>,
    /// Distribution states at drain time.
    pub dists: BTreeMap<String, Histogram>,
}

impl Trace {
    /// Span count per pipeline layer (the `layer.` prefix of span names).
    pub fn spans_per_layer(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for s in &self.spans {
            let layer = s.name.split('.').next().unwrap_or(s.name);
            *out.entry(layer.to_owned()).or_insert(0) += 1;
        }
        out
    }
}

/// Drain the current thread's spans and events into a [`Trace`]; counters
/// and distributions are copied but left running (they are monotonic
/// program-lifetime quantities — use [`reset`] to zero them).
pub fn take() -> Trace {
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let now = c.now_ns();
        let mut spans = std::mem::take(&mut c.spans);
        for &open in &c.stack {
            if let Some(rec) = spans.get_mut(open) {
                rec.dur_ns = now.saturating_sub(rec.start_ns);
            }
        }
        c.stack.clear();
        Trace {
            spans,
            events: std::mem::take(&mut c.events),
            counters: c
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect(),
            dists: c.dists.iter().map(|(&k, &v)| (k.to_owned(), v)).collect(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        reset();
        configure(TraceConfig::default());
        {
            let _g = span("lp.solve");
            let _h = span("lp.pivot");
        }
        assert_eq!(span_count(), 0);
        event("lp.note", &[("k", "v".into())]);
        assert!(take().events.is_empty());
    }

    #[test]
    fn spans_nest_and_close() {
        reset();
        configure(TraceConfig::enabled());
        {
            let _outer = span("phases.pipeline");
            {
                let _inner = span("lp.solve");
            }
            let _sibling = span("commsim.simulate");
        }
        configure(TraceConfig::default());
        let trace = take();
        assert_eq!(trace.spans.len(), 3);
        let outer = &trace.spans[0];
        let inner = &trace.spans[1];
        let sibling = &trace.spans[2];
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.parent, Some(0));
        assert_eq!(sibling.parent, Some(0));
        // Children are contained in the parent.
        for child in [inner, sibling] {
            assert!(child.start_ns >= outer.start_ns);
            assert!(child.start_ns + child.dur_ns <= outer.start_ns + outer.dur_ns);
        }
        assert_eq!(trace.spans_per_layer()["lp"], 1);
        assert_eq!(trace.spans_per_layer()["phases"], 1);
    }

    #[test]
    fn counters_accumulate_and_snapshot_deltas() {
        reset();
        count("test.a", 2);
        let before = CounterSnapshot::now();
        count("test.a", 3);
        count("test.b", 1);
        let delta = CounterSnapshot::now().delta_since(&before);
        assert_eq!(delta.get("test.a"), 3);
        assert_eq!(delta.get("test.b"), 1);
        assert_eq!(counter("test.a"), 5);
        reset_counter("test.a");
        assert_eq!(counter("test.a"), 0);
        assert_eq!(counter("test.b"), 1);
        reset();
        assert_eq!(counter("test.b"), 0);
    }

    #[test]
    fn distributions_track_count_sum_and_buckets() {
        reset();
        record_value("test.width", 1.0);
        record_value("test.width", 4.0);
        record_value("test.width", 5.0);
        let h = distribution("test.width").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 10.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 5.0);
        assert_eq!(h.buckets[0], 1); // 1.0 -> bucket 0
        assert_eq!(h.buckets[2], 2); // 4.0, 5.0 -> bucket 2
        assert!((h.mean() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::default();
        assert_eq!(h.count, 0);
        assert_eq!(h.sum, 0.0);
        assert_eq!(h.mean(), 0.0, "mean of nothing is 0, not NaN");
        assert!(h.buckets.iter().all(|&b| b == 0));
        // min/max are the fold identities until something records.
        assert_eq!(h.min, f64::INFINITY);
        assert_eq!(h.max, f64::NEG_INFINITY);
    }

    #[test]
    fn single_sample_histogram_pins_all_statistics() {
        reset();
        record_value("test.single", 7.0);
        let h = distribution("test.single").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 7.0);
        assert_eq!(h.min, 7.0);
        assert_eq!(h.max, 7.0);
        assert_eq!(h.mean(), 7.0);
        assert_eq!(h.buckets.iter().sum::<u64>(), 1);
        assert_eq!(h.buckets[2], 1); // floor(log2(7)) == 2
    }

    #[test]
    fn histogram_buckets_split_exactly_at_powers_of_two() {
        reset();
        // Bucket i holds values v with floor(log2(max(v,1))) == i, so each
        // power of two opens a new bucket and 2^k - 1 stays in the old one.
        for v in [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 7.0, 8.0] {
            record_value("test.edges", v);
        }
        let h = distribution("test.edges").unwrap();
        assert_eq!(h.buckets[0], 4); // 0, 0.5, 1, 1.5 (sub-1 clamps to 1)
        assert_eq!(h.buckets[1], 2); // 2, 3
        assert_eq!(h.buckets[2], 2); // 4, 7
        assert_eq!(h.buckets[3], 1); // 8
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
        // Values past the largest boundary land in the final bucket.
        reset();
        record_value("test.huge", 2.0f64.powi(60));
        let h = distribution("test.huge").unwrap();
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn delta_since_clamps_counters_reset_mid_run() {
        reset();
        count("test.kept", 5);
        count("test.reset", 9);
        let before = CounterSnapshot::now();
        count("test.kept", 2);
        reset_counter("test.reset"); // mid-run reset: value drops 9 -> 0
        count("test.reset", 4); // climbs back, but below the snapshot
        let after = CounterSnapshot::now();
        let delta = after.delta_since(&before);
        assert_eq!(delta.get("test.kept"), 2);
        // The shrunken counter clamps to zero and is dropped entirely
        // rather than reporting a wrapped-around delta.
        assert_eq!(delta.get("test.reset"), 0);
        assert!(!delta.counters.contains_key("test.reset"));
    }

    #[test]
    fn absorb_adds_counters_and_merges_distributions() {
        reset();
        count("test.absorbed", 2);
        record_value("test.dist", 4.0);
        let mut delta = CounterSnapshot::default();
        delta.counters.insert("test.absorbed".into(), 3);
        delta.counters.insert("test.new".into(), 7);
        let mut h = Histogram::default();
        h.record(16.0);
        h.record(1.0);
        delta.dists.insert("test.dist".into(), h);
        absorb(&delta);
        assert_eq!(counter("test.absorbed"), 5);
        assert_eq!(counter("test.new"), 7);
        let d = distribution("test.dist").unwrap();
        assert_eq!(d.count, 3);
        assert_eq!(d.sum, 21.0);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 16.0);
        reset();
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let mut h = Histogram::default();
        h.record(3.0);
        let snapshot = h;
        h.merge(&Histogram::default());
        assert_eq!(h, snapshot);
        let mut e = Histogram::default();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn take_closes_open_spans_nonnegative() {
        reset();
        configure(TraceConfig::enabled());
        let guard = span("phases.open");
        let trace = take();
        configure(TraceConfig::default());
        drop(guard);
        assert_eq!(trace.spans.len(), 1);
        // dur is elapsed-so-far, not negative / not u64 wraparound.
        assert!(trace.spans[0].dur_ns < u64::MAX / 2);
    }
}
