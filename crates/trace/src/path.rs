//! Workspace-root-relative output paths.
//!
//! Cargo runs test and bench binaries with the *package* directory as
//! their working directory (`crates/bench`, `crates/trace`, …), so a
//! relative `BENCH_JSON=out.jsonl` silently scatters files across package
//! dirs — the CI recipe had to spell out `$PWD`-absolute paths to dodge
//! it. [`resolve_output_path`] removes the footgun: relative paths are
//! resolved against the **workspace root**, found by walking up from
//! `CARGO_MANIFEST_DIR` (set by cargo for every `run`/`test`/`bench`
//! invocation; falls back to the current directory) to the nearest
//! ancestor that owns a `Cargo.lock` or a `[workspace]` manifest.

use std::path::{Path, PathBuf};

/// The workspace root: the nearest ancestor of `start` containing a
/// `Cargo.lock`, else the nearest whose `Cargo.toml` declares
/// `[workspace]`, else `start` itself.
fn workspace_root_from(start: &Path) -> PathBuf {
    for dir in start.ancestors() {
        if dir.join("Cargo.lock").is_file() {
            return dir.to_path_buf();
        }
    }
    for dir in start.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
    }
    start.to_path_buf()
}

/// The workspace root of the running binary (see module docs for the
/// walk-up rules).
pub fn workspace_root() -> PathBuf {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    workspace_root_from(&start)
}

/// Resolve an output path from an environment variable's value: absolute
/// paths pass through untouched, relative ones land in the workspace root
/// regardless of which package directory cargo started the binary in.
pub fn resolve_output_path(path: &str) -> PathBuf {
    let p = Path::new(path);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        workspace_root().join(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_paths_pass_through() {
        let abs = if cfg!(windows) {
            r"C:\tmp\out.json"
        } else {
            "/tmp/out.json"
        };
        assert_eq!(resolve_output_path(abs), PathBuf::from(abs));
    }

    #[test]
    fn relative_paths_land_in_the_workspace_root() {
        // Cargo runs this test with CARGO_MANIFEST_DIR = crates/trace; the
        // resolved path must escape the package dir and land next to the
        // workspace Cargo.lock.
        let resolved = resolve_output_path("out.jsonl");
        let root = resolved.parent().unwrap();
        assert!(
            root.join("Cargo.lock").is_file(),
            "expected workspace root, got {}",
            root.display()
        );
        assert!(!root.ends_with("crates/trace"), "{}", root.display());
        assert_eq!(resolved.file_name().unwrap(), "out.jsonl");
    }

    #[test]
    fn walkup_prefers_the_lockfile_owner() {
        let root = workspace_root();
        assert!(root.join("Cargo.lock").is_file());
        // Nested relative components survive.
        let nested = resolve_output_path("target/traces/run1.json");
        assert!(nested.starts_with(&root));
        assert!(nested.ends_with("target/traces/run1.json"));
    }
}
