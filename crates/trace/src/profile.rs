//! Span-tree profiling: fold a drained [`Trace`] into per-span-name time
//! attribution.
//!
//! A trace records every span with its duration and parent, so the tree
//! already contains a complete wall-time attribution — this module folds it
//! into the two numbers a performance investigation starts from, per
//! `layer.stage` span name:
//!
//! * **inclusive** time — the span's full duration, children included.
//!   Nested occurrences of the *same* name (recursion) count only the
//!   outermost occurrence, so a name's inclusive time never exceeds the
//!   trace's total;
//! * **exclusive** time — the span's duration minus its *direct* children,
//!   i.e. time spent in the stage itself rather than anything it called.
//!   Exclusive times are disjoint by construction, so they sum to at most
//!   the root total and ranking by them names the actual hot code.
//!
//! [`Profile::from_trace`] builds the aggregate, [`Profile::render`] prints
//! the top-N hot-path table (markdown, widest exclusive first), and
//! [`report`] is the one-call convenience the `profile` binary and the
//! experiment harness use.

use crate::Trace;
use std::collections::BTreeMap;

/// Aggregated timing of all spans sharing one name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span name (`layer.stage`).
    pub name: &'static str,
    /// Number of spans with this name.
    pub count: u64,
    /// Total duration, children included (self-nested occurrences counted
    /// once, at the outermost level).
    pub inclusive_ns: u64,
    /// Total duration minus direct children — time in the stage itself.
    pub exclusive_ns: u64,
}

impl ProfileRow {
    /// Exclusive share of the profile's total, as a percentage.
    pub fn exclusive_pct(&self, total_ns: u64) -> f64 {
        if total_ns == 0 {
            0.0
        } else {
            100.0 * self.exclusive_ns as f64 / total_ns as f64
        }
    }
}

/// A folded trace: one row per span name, hottest exclusive time first.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Rows sorted by descending exclusive time (ties: name).
    pub rows: Vec<ProfileRow>,
    /// Sum of the root spans' durations — the wall time the trace covers.
    pub total_ns: u64,
}

impl Profile {
    /// Fold a drained trace into per-name inclusive/exclusive aggregates.
    pub fn from_trace(trace: &Trace) -> Profile {
        // Direct-children durations, charged to the parent index.
        let mut children_ns = vec![0u64; trace.spans.len()];
        for s in &trace.spans {
            if let Some(p) = s.parent {
                children_ns[p] += s.dur_ns;
            }
        }
        let mut agg: BTreeMap<&'static str, ProfileRow> = BTreeMap::new();
        let mut total_ns = 0u64;
        for (i, s) in trace.spans.iter().enumerate() {
            if s.parent.is_none() {
                total_ns += s.dur_ns;
            }
            let row = agg.entry(s.name).or_insert(ProfileRow {
                name: s.name,
                count: 0,
                inclusive_ns: 0,
                exclusive_ns: 0,
            });
            row.count += 1;
            // Clock jitter can make children appear to outlast the parent
            // by nanoseconds; clamp rather than wrap.
            row.exclusive_ns += s.dur_ns.saturating_sub(children_ns[i]);
            // Inclusive: only the outermost occurrence of a name counts, so
            // recursive spans are not double-charged.
            let mut ancestor = s.parent;
            let mut self_nested = false;
            while let Some(a) = ancestor {
                if trace.spans[a].name == s.name {
                    self_nested = true;
                    break;
                }
                ancestor = trace.spans[a].parent;
            }
            if !self_nested {
                row.inclusive_ns += s.dur_ns;
            }
        }
        let mut rows: Vec<ProfileRow> = agg.into_values().collect();
        rows.sort_by(|a, b| b.exclusive_ns.cmp(&a.exclusive_ns).then(a.name.cmp(b.name)));
        Profile { rows, total_ns }
    }

    /// The `n` rows with the largest exclusive time.
    pub fn top_exclusive(&self, n: usize) -> &[ProfileRow] {
        &self.rows[..self.rows.len().min(n)]
    }

    /// The top-N hot-path table as markdown: span, call count, inclusive
    /// and exclusive time, and the exclusive share of the trace total.
    pub fn render(&self, top_n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| span | calls | inclusive | exclusive | excl % |\n\
             |---|---:|---:|---:|---:|"
        );
        for r in self.top_exclusive(top_n) {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {:.1}% |",
                r.name,
                r.count,
                fmt_ns(r.inclusive_ns),
                fmt_ns(r.exclusive_ns),
                r.exclusive_pct(self.total_ns)
            );
        }
        let _ = writeln!(
            out,
            "\ntotal traced: {} across {} span name(s)",
            fmt_ns(self.total_ns),
            self.rows.len()
        );
        out
    }
}

/// One-call report: fold `trace` and render the top-`top_n` table.
pub fn report(trace: &Trace, top_n: usize) -> String {
    Profile::from_trace(trace).render(top_n)
}

/// Human-readable nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanRecord;

    fn span(
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        depth: usize,
        parent: Option<usize>,
    ) -> SpanRecord {
        SpanRecord {
            name,
            start_ns,
            dur_ns,
            depth,
            parent,
        }
    }

    #[test]
    fn exclusive_subtracts_direct_children_only() {
        // root(100) -> mid(60) -> leaf(20): root excl 40, mid excl 40.
        let mut t = Trace::default();
        t.spans.push(span("phases.pipeline", 0, 100, 0, None));
        t.spans.push(span("phases.search", 10, 60, 1, Some(0)));
        t.spans.push(span("lp.solve", 20, 20, 2, Some(1)));
        let p = Profile::from_trace(&t);
        assert_eq!(p.total_ns, 100);
        let get = |n: &str| p.rows.iter().find(|r| r.name == n).unwrap();
        assert_eq!(get("phases.pipeline").exclusive_ns, 40);
        assert_eq!(get("phases.pipeline").inclusive_ns, 100);
        assert_eq!(get("phases.search").exclusive_ns, 40);
        assert_eq!(get("phases.search").inclusive_ns, 60);
        assert_eq!(get("lp.solve").exclusive_ns, 20);
        // Exclusive times are disjoint and sum to the total.
        assert_eq!(p.rows.iter().map(|r| r.exclusive_ns).sum::<u64>(), 100);
    }

    #[test]
    fn recursion_counts_inclusive_once() {
        // solve(100) -> solve(60): inclusive must be 100, not 160.
        let mut t = Trace::default();
        t.spans.push(span("lp.solve", 0, 100, 0, None));
        t.spans.push(span("lp.solve", 10, 60, 1, Some(0)));
        let p = Profile::from_trace(&t);
        assert_eq!(p.rows.len(), 1);
        assert_eq!(p.rows[0].count, 2);
        assert_eq!(p.rows[0].inclusive_ns, 100);
        assert_eq!(p.rows[0].exclusive_ns, 100); // 40 outer + 60 inner
    }

    #[test]
    fn rows_rank_by_exclusive_and_render_caps_top_n() {
        let mut t = Trace::default();
        t.spans.push(span("a.root", 0, 100, 0, None));
        t.spans.push(span("b.hot", 0, 70, 1, Some(0)));
        t.spans.push(span("c.cold", 70, 10, 1, Some(0)));
        let p = Profile::from_trace(&t);
        let names: Vec<&str> = p.rows.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["b.hot", "a.root", "c.cold"]);
        assert_eq!(p.top_exclusive(2).len(), 2);
        let table = p.render(2);
        assert!(table.contains("b.hot"), "{table}");
        assert!(table.contains("a.root"), "{table}");
        assert!(!table.contains("c.cold"), "top-2 excludes the cold row");
        assert!(table.contains("3 span name(s)"), "{table}");
    }

    #[test]
    fn empty_trace_profiles_to_nothing() {
        let p = Profile::from_trace(&Trace::default());
        assert!(p.rows.is_empty());
        assert_eq!(p.total_ns, 0);
        assert_eq!(p.rows.iter().map(|r| r.exclusive_pct(0)).sum::<f64>(), 0.0);
        assert!(report(&Trace::default(), 10).contains("0 span name(s)"));
    }

    #[test]
    fn jitter_outliving_child_clamps_to_zero_exclusive() {
        let mut t = Trace::default();
        t.spans.push(span("a.parent", 0, 50, 0, None));
        t.spans.push(span("b.child", 0, 60, 1, Some(0)));
        let p = Profile::from_trace(&t);
        let parent = p.rows.iter().find(|r| r.name == "a.parent").unwrap();
        assert_eq!(parent.exclusive_ns, 0, "clamped, not wrapped");
    }
}
