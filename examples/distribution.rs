//! The complete two-phase pipeline on the paper's Figure 1 fragment:
//! alignment (mobile offsets, replication) followed by the distribution
//! phase — processor-grid shape selection and per-axis BLOCK / CYCLIC /
//! CYCLIC(b) layouts — on 16 processors.
//!
//! ```text
//! cargo run --release --example distribution
//! ```

use array_alignment::prelude::*;

fn main() {
    let n = 32;
    let nprocs = 16;
    let program = programs::figure1(n);
    println!("program: {}", program.name);
    println!("processors: {nprocs}\n");

    let full = align_then_distribute(&program, nprocs, &FullPipelineConfig::default());

    println!(
        "alignment: {} (mobile ports: {}, replicated ports: {})",
        full.alignment.total_cost,
        full.alignment.alignment.num_mobile(),
        full.alignment.alignment.num_replicated(),
    );
    println!("\n{}", full.distribution);

    let best = full.best();
    println!("chosen: {}", best.distribution);

    // Cross-check the chosen distribution in the exact simulator — the
    // ProgramDistribution plugs straight into commsim.
    let sim = simulate(
        &full.adg,
        &full.alignment.alignment,
        &best.distribution,
        SimOptions::default(),
    );
    println!(
        "simulated on {} processors: {:.0} element moves, {:.0} broadcast elements",
        sim.processors, sim.total.element_moves, sim.total.broadcast_elements
    );

    // And show what the owner-computes map looks like for a few cells.
    println!("\nowner map samples (template cell -> processor, local index):");
    for cell in [[0i64, 0i64], [0, 16], [16, 0], [31, 63]] {
        let (proc, locals) = best.distribution.to_local(&cell);
        println!("  {cell:?} -> p{proc}, local {locals:?}");
    }
}
