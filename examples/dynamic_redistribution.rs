//! Dynamic redistribution on a program whose best distribution flips
//! mid-program (the README's worked example), with the observability layer
//! on: the run records timed spans in every pipeline layer, prints the
//! one-line solve summary and the full plan explainer, and — when the
//! `TRACE_JSON` environment variable names a file — exports the trace in
//! Chrome trace-event format (load it in `chrome://tracing` or Perfetto):
//!
//! ```text
//! cargo run --release --example dynamic_redistribution
//! TRACE_JSON=target/dynamic.trace.json cargo run --release --example dynamic_redistribution
//! ```

use array_alignment::prelude::*;

fn main() {
    // Record spans for this run (counters are always on).
    trace::configure(TraceConfig::enabled());

    // Two loops over A(n,n): the first shifts data along the columns (work
    // within rows), the second along the rows (work within columns).
    let program = programs::fft_like(32, 40);
    let nprocs = 8;

    let result = align_then_distribute_dynamic(&program, nprocs, &DynamicConfig::default());

    println!("program: {}", program.name);
    println!("phases detected: {}", result.phases.len());
    for (i, phase) in result.phases.iter().enumerate() {
        println!(
            "  phase {i}: statements {:?}, best in isolation: {}",
            phase.range,
            phase.report.best().distribution
        );
    }
    println!("\n{}", result.dynamic);
    println!(
        "static best for comparison: {} ({:.0} simulated elements)",
        result.static_result.best().distribution,
        result.static_planned_cost
    );

    // Validate the plan end to end in the communication simulator.
    let opts = SimOptions::default();
    let dynamic = simulate_dynamic(&result, opts);
    let fixed = simulate_static(&result, opts);
    println!(
        "\nsimulated elements moved: dynamic {:.0} (of which {:.0} in the \
         mid-program redistribution) vs static {:.0}",
        dynamic.total_elements(),
        dynamic.redist_elements.iter().sum::<f64>(),
        fixed.total_elements()
    );

    // What the solve did internally, in one line and in full.
    println!("\n{}", result.summary);
    println!("\n{}", explain(&result));

    // Export the Chrome trace if TRACE_JSON names a file.
    match trace::chrome::export_env_trace() {
        Ok(Some(path)) => println!("trace written to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("warning: could not write TRACE_JSON: {e}"),
    }
}
