//! Mobile stride alignment on the paper's Example 5.
//!
//! ```text
//! cargo run --example mobile_stride
//! ```
//!
//! ```fortran
//! real A(1000), B(1000), V(20)
//! do k = 1, 50
//!   V = V + A(1:20*k:k)
//!   B(1:20*k:k) = V
//! enddo
//! ```
//!
//! Any static stride for `V` costs two general communications per iteration;
//! the mobile stride `V(i) ->_k [k*i]` costs one.

use array_alignment::core_::axis::{solve_axes, template_rank};
use array_alignment::core_::stride::{solve_strides, solve_strides_with};
use array_alignment::prelude::*;

fn main() {
    let program = programs::example5_default();
    println!("program: {}", program.name);
    let adg = build_adg(&program);
    let t = template_rank(&adg);
    let ranks: Vec<usize> = adg.port_ids().map(|p| adg.port(p).rank).collect();

    // Mobile strides allowed.
    let mut mobile = ProgramAlignment::identity(t, &ranks);
    solve_axes(&adg, &mut mobile);
    solve_strides(&adg, &mut mobile);
    let mobile_cost = CostModel::new(&adg).total_cost(&mobile);

    // Static strides only.
    let mut fixed = ProgramAlignment::identity(t, &ranks);
    solve_axes(&adg, &mut fixed);
    solve_strides_with(&adg, &mut fixed, false);
    let static_cost = CostModel::new(&adg).total_cost(&fixed);

    println!("\n                      general communication (element-traversals)");
    println!("  best static stride:  {:>10.0}", static_cost.general);
    println!("  mobile stride [k*i]: {:>10.0}", mobile_cost.general);
    println!(
        "  ratio: {:.2} (the paper: 2 general communications per iteration vs 1)",
        static_cost.general / mobile_cost.general.max(1.0)
    );

    let mobile_ports = mobile
        .ports
        .iter()
        .filter(|p| p.strides.iter().any(|s| !s.is_constant()))
        .count();
    println!("\nports with a mobile stride: {mobile_ports}");
}
