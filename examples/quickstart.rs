//! Quickstart: align the paper's Figure 1 program and inspect the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The program is the motivating example of the paper:
//!
//! ```fortran
//! real A(n,n), V(2n)
//! do k = 1, n
//!   A(k,1:n) = A(k,1:n) + V(k:k+n-1)
//! enddo
//! ```
//!
//! A static alignment of `V` forces a shift of the whole vector on every
//! iteration; the mobile alignment `V(i) ->_k [k, i-k+1]` (realised through
//! replication, since `V` is read-only) removes all residual communication.

use array_alignment::prelude::*;

fn main() {
    let n = 64;
    let program = programs::figure1(n);
    println!("program: {}", program.name);

    // Run the full alignment pipeline: axis -> stride -> replication <-> offsets.
    let (adg, result) = align_program(&program, &PipelineConfig::default());
    println!(
        "ADG: {} nodes, {} edges, template rank {}",
        adg.num_nodes(),
        adg.num_edges(),
        result.template_rank
    );
    println!(
        "alignment: {} mobile ports, {} replicated ports",
        result.alignment.num_mobile(),
        result.alignment.num_replicated()
    );
    println!("predicted realignment cost: {}", result.total_cost);

    // Compare against the best purely static offset alignment.
    let mut static_cfg = PipelineConfig::default();
    static_cfg.offset = MobileOffsetConfig::static_only();
    static_cfg.disable_replication = true;
    let (_, static_result) = align_program(&program, &static_cfg);
    println!("static alignment cost:        {}", static_result.total_cost);

    // Confirm on a simulated 4-processor machine.
    let machine = Machine::new(vec![2, 2], vec![(n / 2) as usize, (n / 2) as usize]);
    let mobile_sim = simulate(&adg, &result.alignment, &machine, SimOptions::default());
    let static_sim = simulate(
        &adg,
        &static_result.alignment,
        &machine,
        SimOptions::default(),
    );
    println!(
        "simulated elements moved: mobile+replicated = {:.0}, static = {:.0}",
        mobile_sim.total_elements(),
        static_sim.total_elements()
    );
}
