//! Replication labeling on the paper's Figure 4 program.
//!
//! ```text
//! cargo run --example replication_fig4
//! ```
//!
//! ```fortran
//! real t(100), B(100,200)
//! do K = 1, 200
//!   t = cos(t)
//!   B = B + spread(t, dim=2, ncopies=200)
//! enddo
//! ```
//!
//! The `spread` forces its operand to be replicated along the second template
//! axis. If only the spread input is replicated, `t` is broadcast on *every*
//! iteration (100 x 200 = 20 000 elements); the min-cut labeling of Section 5
//! replicates `t` throughout the loop so a single broadcast at loop entry
//! suffices.

use array_alignment::prelude::*;

fn main() {
    let program = programs::figure4_default();
    println!("program: {}", program.name);

    // Optimal labeling (min-cut).
    let (adg, with_cut) = align_program(&program, &PipelineConfig::default());

    // Baseline: only the replication the program semantics force.
    let mut baseline_cfg = PipelineConfig::default();
    baseline_cfg.disable_replication = true;
    let (_, baseline) = align_program(&program, &baseline_cfg);

    println!("\n                     broadcast volume (elements over the whole loop)");
    println!(
        "  per-iteration broadcast (no labeling): {:>10.0}",
        baseline.total_cost.broadcast
    );
    println!(
        "  min-cut replication labeling:          {:>10.0}",
        with_cut.total_cost.broadcast
    );
    let ratio = baseline.total_cost.broadcast / with_cut.total_cost.broadcast.max(1.0);
    println!("  improvement: {ratio:.0}x (the paper: 200 broadcasts -> 1)");

    if let Some(labeling) = &with_cut.replication {
        println!(
            "\nreplicated nodes along axis 1: {}",
            labeling.axes[1].replicated_nodes.len()
        );
        println!(
            "min-cut value (broadcast volume): {:.0}",
            labeling.axes[1].broadcast_cost
        );
    }

    // Simulate both on an 8-processor machine.
    let machine = Machine::new(vec![2, 4], vec![50, 50]);
    let cut_sim = simulate(&adg, &with_cut.alignment, &machine, SimOptions::default());
    let base_sim = simulate(&adg, &baseline.alignment, &machine, SimOptions::default());
    println!(
        "\nsimulated broadcast elements: min-cut = {:.0}, baseline = {:.0}",
        cut_sim.total.broadcast_elements, base_sim.total.broadcast_elements
    );
}
