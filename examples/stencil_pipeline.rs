//! Full-pipeline run on a realistic workload: a 2-D Jacobi-style stencil plus
//! a skewed sweep, comparing offset-solver strategies.
//!
//! ```text
//! cargo run --example stencil_pipeline
//! ```
//!
//! This exercises the whole public API on programs the paper's introduction
//! motivates (regular scientific kernels with shifted operands), and shows
//! how the five mobile-offset strategies of Section 4.2 trade solve effort
//! against alignment quality.

use array_alignment::prelude::*;
use std::time::Instant;

fn main() {
    let workloads: Vec<(&str, Program)> = vec![
        ("stencil2d(64, 10)", programs::stencil2d(64, 10)),
        ("skewed_sweep(64)", programs::skewed_sweep(64)),
        ("nested_mobile(16)", programs::nested_mobile(16)),
    ];
    let strategies = [
        OffsetStrategy::SingleRange,
        OffsetStrategy::FixedPartition(3),
        OffsetStrategy::FixedPartition(5),
        OffsetStrategy::RecursiveRefinement { max_rounds: 4 },
        OffsetStrategy::Unrolling,
    ];

    for (name, program) in &workloads {
        println!("== {name} ==");
        println!(
            "{:<28} {:>12} {:>12} {:>10}",
            "strategy", "shift cost", "general", "time"
        );
        for strategy in strategies {
            let start = Instant::now();
            let (_, result) = align_program(program, &PipelineConfig::with_strategy(strategy));
            let elapsed = start.elapsed();
            println!(
                "{:<28} {:>12.0} {:>12.0} {:>9.1}ms",
                strategy.name(),
                result.total_cost.shift,
                result.total_cost.general,
                elapsed.as_secs_f64() * 1000.0
            );
        }
        println!();
    }
}
