//! # array-alignment
//!
//! A Rust reproduction of *Mobile and Replicated Alignment of Arrays in
//! Data-Parallel Programs* (Chatterjee, Gilbert, Schreiber — Supercomputing
//! '93). This umbrella crate re-exports the workspace so applications can
//! depend on a single crate:
//!
//! * [`ir`] (`align-ir`) — the data-parallel array IR and the paper's example
//!   programs;
//! * [`adg`] — the alignment-distribution graph;
//! * [`lp`] — the two-phase simplex solver behind rounded linear programming;
//! * [`netflow`] — max-flow / min-cut for replication labeling;
//! * [`core`] (`alignment-core`) — the alignment analysis itself (axis,
//!   mobile stride, replication, mobile offset, pipeline);
//! * [`sim`] (`commsim`) — the distributed-memory communication simulator
//!   used to validate alignments;
//! * [`distrib`] — the distribution phase: processor-grid shapes, block /
//!   cyclic / block-cyclic layouts per template axis, and the cost-driven
//!   search combining both phases (`align_then_distribute`);
//! * [`phases`] — phase analysis and dynamic redistribution: partition the
//!   program where its communication topology changes, pick a distribution
//!   per phase, and price the redistribution steps between them
//!   (`align_then_distribute_dynamic`).
//!
//! ## Quick start
//!
//! ```
//! use array_alignment::prelude::*;
//!
//! // The paper's Figure 1 fragment, at n = 32.
//! let program = align_ir::programs::figure1(32);
//! let (adg, result) = align_program(&program, &PipelineConfig::default());
//!
//! // The analysis removes every residual shift; the only communication left
//! // is at most a single broadcast of V at loop entry.
//! assert_eq!(result.total_cost.general, 0.0);
//! assert_eq!(result.total_cost.shift, 0.0);
//!
//! // Simulate it on a 2x2 processor grid to confirm.
//! let machine = Machine::new(vec![2, 2], vec![16, 16]);
//! let report = simulate(&adg, &result.alignment, &machine, SimOptions::default());
//! assert_eq!(report.total.element_moves, 0.0);
//!
//! // Or let the distribution phase pick the machine: search grid shapes and
//! // per-axis layouts for 16 processors in one call.
//! let full = align_then_distribute(&program, 16, &FullPipelineConfig::default());
//! let chosen = &full.best().distribution;
//! assert_eq!(chosen.grid().iter().product::<usize>(), 16);
//! ```

pub use adg;
pub use align_ir;
pub use align_ir as ir;
pub use alignment_core;
pub use alignment_core as core_;
pub use commsim;
pub use commsim as sim;
pub use distrib;
pub use lp;
pub use netflow;
pub use phases;
pub use trace;

/// Everything most applications need.
pub mod prelude {
    pub use adg::{build_adg, Adg};
    pub use align_ir::{self, programs, Program, ProgramBuilder};
    pub use alignment_core::{
        align_program, AlignmentResult, CommCost, CostModel, MobileOffsetConfig, OffsetStrategy,
        PipelineConfig, ProgramAlignment,
    };
    pub use commsim::{
        simulate, Machine, PlacementCache, SimOptions, SimReport, TemplateDistribution,
    };
    pub use distrib::{
        align_then_distribute, distribute_alignment, solve_distribution, AxisDistribution,
        DistribCostParams, DistributionCost, DistributionCostModel, DistributionReport,
        FullPipelineConfig, FullPipelineResult, Layout, ProgramDistribution, RankedDistribution,
        SolveConfig,
    };
    pub use phases::{
        align_then_distribute_dynamic, explain, explain_diff, simulate_dynamic, simulate_static,
        DynamicConfig, DynamicDistribution, DynamicPipelineResult, PhaseResult, PlanDiff,
        RedistCost, RedistStep, SolveSummary,
    };
    pub use trace::{self, CounterSnapshot, TraceConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let p = programs::example1(8);
        let (_, result) = align_program(&p, &PipelineConfig::default());
        assert!(result.total_cost.is_zero());
    }
}
