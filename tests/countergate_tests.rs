//! The machine-independent regression gate end to end: the canonical
//! suite's counters are reproducible (so a clean tree passes the gate), an
//! injected algorithmic regression fails the gate **with the offending
//! counter named**, and `explain_diff` audits plan pairs with cost deltas
//! that reproduce the planned-cost difference bit for bit.
//!
//! Tracing state is thread-local and every `#[test]` runs on its own
//! thread, so the `trace::reset` calls inside the gate helpers cannot
//! disturb other tests.

use array_alignment::prelude::*;
use bench::countergate::{self, CounterDiff, SuiteCounters};

/// A small but boundary-rich subset of the suite — enough for the gate
/// semantics without paying full-suite solve time in every test binary.
fn subset() -> Vec<(&'static str, Program)> {
    programs::phase_workloads()
        .into_iter()
        .filter(|(name, _)| matches!(*name, "fft_like" | "reduction_tree" | "lookup_table"))
        .collect()
}

fn run_subset(config: &DynamicConfig) -> SuiteCounters {
    SuiteCounters {
        nprocs: countergate::SUITE_NPROCS,
        workloads: subset()
            .iter()
            .map(|(name, program)| countergate::run_workload(name, program, config))
            .collect(),
    }
}

#[test]
fn clean_rerun_passes_the_gate() {
    let config = countergate::suite_config();
    let first = run_subset(&config);
    let second = run_subset(&config);
    assert!(!first.workloads.is_empty());
    for w in &first.workloads {
        assert!(
            !w.counters.is_empty(),
            "{}: a solve must leave a counter trail",
            w.name
        );
    }
    let summary = countergate::compare(&first, &second).unwrap_or_else(|diffs| {
        panic!(
            "identical solves must pass the gate:\n{}",
            countergate::render_diffs(&diffs)
        )
    });
    assert!(summary.contains("workload(s)"), "{summary}");
}

#[test]
fn baseline_roundtrips_through_the_committed_json_format() {
    let config = countergate::suite_config();
    let suite = run_subset(&config);
    let doc = suite.to_json().to_string_pretty();
    let parsed = SuiteCounters::from_json(&doc).unwrap();
    assert_eq!(parsed, suite, "JSON round-trip must be lossless");
    assert!(countergate::compare(&suite, &parsed).is_ok());
}

#[test]
fn bypassing_the_move_pricer_memo_fails_the_gate_naming_the_counter() {
    let baseline = run_subset(&countergate::suite_config());

    // The injected algorithmic regression: disable the MovePricer memo.
    // The plan is unchanged, but every repeated (phase, array, src, dst)
    // query is re-priced — exactly the class of silent slow-down the
    // wall-time gate would miss at this scale.
    let mut regressed_config = countergate::suite_config();
    regressed_config.pricer_memo = false;
    let regressed = run_subset(&regressed_config);

    let diffs: Vec<CounterDiff> = countergate::compare(&baseline, &regressed)
        .expect_err("a bypassed cache must not pass the counter gate");
    assert!(
        diffs
            .iter()
            .any(|d| d.counter.starts_with("phases.pricer.")),
        "the offending pricer counter must be named: {diffs:?}"
    );
    // The memo bypass never changes the plan, only the work: hits drain to
    // zero somewhere and the repricing shows up as extra misses.
    let pricer_drift = diffs
        .iter()
        .find(|d| d.counter == "phases.pricer.hits" || d.counter == "phases.pricer.misses")
        .unwrap();
    assert_ne!(pricer_drift.baseline, pricer_drift.current);
    // And the rendered table carries the name for the CI log.
    assert!(
        countergate::render_diffs(&diffs).contains("phases.pricer."),
        "diff table must name the counter"
    );
}

#[test]
fn explain_diff_deltas_are_bitwise_on_every_phase_workload_pair() {
    // For every workload: a = the default plan, b = a forced single-phase
    // plan (no seams, no coalescing). The structured diff's cost delta
    // must reproduce planned_cost(a) - planned_cost(b) bit for bit, and
    // the self-diff must be identically zero.
    let mut single_phase = DynamicConfig::default();
    single_phase.boundaries = Some(vec![]);
    single_phase.coalesce_phases = false;
    for (name, program) in programs::phase_workloads() {
        let a = align_then_distribute_dynamic(&program, 8, &DynamicConfig::default());
        let b = align_then_distribute_dynamic(&program, 8, &single_phase);

        let diff = explain_diff(&a, &b);
        assert_eq!(
            diff.cost_delta().to_bits(),
            (a.dynamic.planned_cost - b.dynamic.planned_cost).to_bits(),
            "{name}: delta must be bitwise the planned-cost difference"
        );
        assert_eq!(
            diff.total_a.to_bits(),
            a.dynamic.planned_cost.to_bits(),
            "{name}"
        );
        assert_eq!(
            diff.total_b.to_bits(),
            b.dynamic.planned_cost.to_bits(),
            "{name}"
        );
        // Every seam of `a` is a removed boundary relative to the forced
        // single phase; nothing is ever added.
        assert_eq!(
            diff.boundaries_removed.len(),
            a.phases.len().saturating_sub(1),
            "{name}"
        );
        assert!(diff.boundaries_added.is_empty(), "{name}");
        // The reversed diff carries the negated delta.
        let rev = explain_diff(&b, &a);
        assert_eq!(
            rev.cost_delta().to_bits(),
            (b.dynamic.planned_cost - a.dynamic.planned_cost).to_bits(),
            "{name}: reversed"
        );

        // Self-diffs are structurally identical with a zero delta.
        let same = explain_diff(&a, &a);
        assert!(same.is_identical(), "{name}: self-diff:\n{same}");
        assert_eq!(same.cost_delta().to_bits(), 0.0f64.to_bits(), "{name}");
    }
}

#[test]
fn lookup_table_runs_through_the_full_gated_surface() {
    // The ROADMAP's missing gather/scatter workload is now a first-class
    // suite member: present in phase_workloads, solvable at the gate's
    // pinned configuration, and counter-reproducible like the rest.
    let workloads = programs::phase_workloads();
    let (name, program) = workloads
        .iter()
        .find(|(n, _)| *n == "lookup_table")
        .expect("lookup_table must be in the phase suite");
    let config = countergate::suite_config();
    let first = countergate::run_workload(name, program, &config);
    let second = countergate::run_workload(name, program, &config);
    assert_eq!(first, second, "lookup_table counters must be deterministic");
    assert!(first.counters.keys().any(|k| k.starts_with("align.")));
    assert!(first.counters.keys().any(|k| k.starts_with("commsim.")));
}
