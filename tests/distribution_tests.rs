//! The distribution subsystem, end to end: golden tests pinning the chosen
//! (grid, layout) for the paper's programs, property tests on the
//! owner-computes index maps, and consistency between the distribution cost
//! model and the commsim simulator.

use array_alignment::prelude::*;
use bench::Rng;
use distrib::layout::{AxisDistribution, Layout};

// ---------------------------------------------------------------------------
// Golden tests: the solver's choice for the paper's programs is pinned.
// These encode *behaviour we understood and verified by hand*: a program
// whose alignment removed all residual communication should be distributed
// by load balance alone; a stencil should land on a square-ish BLOCK grid.
// ---------------------------------------------------------------------------

#[test]
fn golden_figure1_on_16_processors() {
    let full = align_then_distribute(&programs::figure1(32), 16, &FullPipelineConfig::default());
    let best = full.best();
    // The alignment is communication-free (mobile V), so distribution is
    // decided by load balance alone. The row axis spans exactly 32 cells —
    // 2 per processor on a 16x1 grid — while the column axis is ragged (V's
    // mobile positions stretch its span to 95 cells), so the perfectly
    // balanced row-partitioned grid wins at total cost zero.
    assert_eq!(
        best.distribution.grid(),
        vec![16, 1],
        "{}",
        best.distribution
    );
    assert_eq!(best.cost.total(), 0.0, "{}", best.cost);
    // Template covers A's rows exactly and V's reach on axis 1.
    assert_eq!(full.distribution.template_extents[0], 32);
    assert!(full.distribution.template_extents[1] >= 64);
    assert!(full.distribution.exhaustive);
}

#[test]
fn golden_example5_on_16_processors() {
    let full = align_then_distribute(
        &programs::example5_default(),
        16,
        &FullPipelineConfig::default(),
    );
    let best = full.best();
    // 1-D template: the only grid shape is [16]; the mobile stride leaves one
    // general communication per iteration (the paper's result), which no
    // layout can remove — the layout is chosen on shift + balance and must
    // be BLOCK (cheapest boundary crossings for the residual shifts).
    assert_eq!(best.distribution.grid(), vec![16]);
    assert_eq!(
        best.distribution.layouts(),
        vec![Layout::Block],
        "{}",
        best.distribution
    );
    assert!(
        best.cost.general > 0.0,
        "mobile stride residual: {}",
        best.cost
    );
}

#[test]
fn golden_stencil2d_on_16_processors() {
    let full = align_then_distribute(
        &programs::stencil2d(32, 4),
        16,
        &FullPipelineConfig::default(),
    );
    let best = full.best();
    // The textbook answer for a 5-point stencil: a square BLOCK x BLOCK grid
    // (nearest-neighbour shifts cross only block boundaries).
    assert_eq!(
        best.distribution.grid(),
        vec![4, 4],
        "{}",
        best.distribution
    );
    assert_eq!(
        best.distribution.layouts()[1],
        Layout::Block,
        "{}",
        best.distribution
    );
    assert_eq!(best.cost.general, 0.0, "{}", best.cost);
    // A cyclic-everywhere distribution must be strictly worse: every ±1
    // stencil shift would move every element.
    let all_cyclic = ProgramDistribution::new(
        &full.distribution.template_extents,
        &[4, 4],
        &[Layout::Cyclic, Layout::Cyclic],
    );
    let model = DistributionCostModel::new(&full.adg, &full.alignment.alignment);
    let cyclic_cost = model.cost(&all_cyclic, &DistribCostParams::default());
    assert!(
        cyclic_cost.total() > best.cost.total(),
        "cyclic {} vs best {}",
        cyclic_cost.total(),
        best.cost.total()
    );
}

// ---------------------------------------------------------------------------
// Property tests: owner-computes index maps are bijective on local blocks.
// ---------------------------------------------------------------------------

#[test]
fn axis_local_maps_are_bijective() {
    let mut rng = Rng::new(2024);
    for case in 0..200 {
        let extent = rng.range_i64(1, 200);
        let nprocs = rng.range_usize(1, 9);
        let layout = match rng.range_usize(0, 3) {
            0 => Layout::Block,
            1 => Layout::Cyclic,
            _ => Layout::BlockCyclic(rng.range_usize(1, 12)),
        };
        let d = AxisDistribution::new(extent, nprocs, layout);
        let label = format!("case {case}: extent={extent} g={nprocs} {layout}");
        // Forward then inverse is the identity on every cell...
        let mut seen = std::collections::HashSet::new();
        for c in 0..extent {
            let (p, l) = d.to_local(c);
            assert!(p < nprocs, "{label}");
            assert!(l >= 0, "{label}");
            assert_eq!(d.to_global(p, l), Some(c), "{label} cell {c}");
            assert!(seen.insert((p, l)), "{label}: duplicate image for {c}");
        }
        // ...and the per-processor counts partition the axis.
        let total: i64 = (0..nprocs).map(|p| d.local_count(p)).sum();
        assert_eq!(total, extent, "{label}");
        // Local indices are dense: 0..local_count(p) all map back in range.
        for p in 0..nprocs {
            for l in 0..d.local_count(p) {
                let c = d
                    .to_global(p, l)
                    .unwrap_or_else(|| panic!("{label}: proc {p} local {l} has no global cell"));
                assert!((0..extent).contains(&c), "{label}");
            }
        }
    }
}

#[test]
fn whole_template_owner_matches_axis_owners() {
    let mut rng = Rng::new(2025);
    for _ in 0..50 {
        let extents = [rng.range_i64(1, 40), rng.range_i64(1, 40)];
        let grid = [rng.range_usize(1, 5), rng.range_usize(1, 5)];
        let layouts = [Layout::Block, Layout::BlockCyclic(rng.range_usize(1, 6))];
        let d = ProgramDistribution::new(&extents, &grid, &layouts);
        for _ in 0..64 {
            let c0 = rng.range_i64(0, extents[0] - 1);
            let c1 = rng.range_i64(0, extents[1] - 1);
            let (owner_via_local, _) = d.to_local(&[c0, c1]);
            let owner_via_trait = TemplateDistribution::owner(&d, &[Some(c0), Some(c1)]);
            assert_eq!(owner_via_local, owner_via_trait);
        }
    }
}

#[test]
fn moved_fraction_is_a_fraction_and_periodic() {
    let mut rng = Rng::new(2026);
    for _ in 0..100 {
        let extent = rng.range_i64(4, 128);
        let g = rng.range_usize(2, 7);
        let layout = match rng.range_usize(0, 3) {
            0 => Layout::Block,
            1 => Layout::Cyclic,
            _ => Layout::BlockCyclic(rng.range_usize(1, 9)),
        };
        let d = AxisDistribution::new(extent, g, layout);
        let shift = rng.range_i64(-20, 20);
        let f = d.moved_fraction(shift);
        assert!(
            (0.0..=1.0).contains(&f),
            "extent={extent} g={g} {layout} d={shift}: {f}"
        );
        // Shifting by a whole owner period changes no owners.
        assert_eq!(d.moved_fraction(d.period()), 0.0);
        assert_eq!(d.moved_fraction(0), 0.0);
    }
}

// ---------------------------------------------------------------------------
// Consistency with the simulator.
// ---------------------------------------------------------------------------

#[test]
fn simulator_accepts_program_distribution_directly() {
    let full = align_then_distribute(&programs::figure1(16), 4, &FullPipelineConfig::default());
    let best = &full.best().distribution;
    // Simulating via the distribution and via its equivalent machine must
    // agree exactly (same owner map, same traffic).
    let via_dist = simulate(
        &full.adg,
        &full.alignment.alignment,
        best,
        SimOptions::default(),
    );
    let via_machine = simulate(
        &full.adg,
        &full.alignment.alignment,
        &best.to_machine(),
        SimOptions::default(),
    );
    assert_eq!(via_dist.processors, via_machine.processors);
    assert!(
        (via_dist.total_elements() - via_machine.total_elements()).abs() < 1e-9,
        "dist {} vs machine {}",
        via_dist.total_elements(),
        via_machine.total_elements()
    );
}

#[test]
fn chosen_distribution_not_worse_than_naive_cyclic_in_simulation() {
    // The solver's pick, played through the exact simulator, should not lose
    // to the naive all-cyclic strawman on the stencil workload.
    let full = align_then_distribute(
        &programs::stencil2d(24, 3),
        4,
        &FullPipelineConfig::default(),
    );
    let best = &full.best().distribution;
    let cyclic = ProgramDistribution::new(
        &full.distribution.template_extents,
        &best.grid(),
        &vec![Layout::Cyclic; best.template_rank()],
    );
    let sim_best = simulate(
        &full.adg,
        &full.alignment.alignment,
        best,
        SimOptions::default(),
    );
    let sim_cyclic = simulate(
        &full.adg,
        &full.alignment.alignment,
        &cyclic,
        SimOptions::default(),
    );
    assert!(
        sim_best.total_elements() <= sim_cyclic.total_elements() + 1e-9,
        "best {} vs cyclic {}",
        sim_best.total_elements(),
        sim_cyclic.total_elements()
    );
}

#[test]
fn report_ranking_is_consistent_and_bounded() {
    let full = align_then_distribute(
        &programs::figure4_default(),
        8,
        &FullPipelineConfig::default(),
    );
    let ranked = &full.distribution.ranked;
    assert!(!ranked.is_empty() && ranked.len() <= 8);
    for pair in ranked.windows(2) {
        assert!(pair[0].cost.total() <= pair[1].cost.total() + 1e-9);
    }
    for r in ranked {
        assert_eq!(
            r.distribution.grid().iter().product::<usize>(),
            8,
            "{}",
            r.distribution
        );
    }
}
