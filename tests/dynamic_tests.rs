//! The dynamic-redistribution subsystem end to end: phase detection, the
//! layered DAG, and — the acceptance criterion — a transpose-heavy workload
//! on which the dynamic plan's *simulated* total traffic (including the
//! redistribution steps) beats the best single static distribution.

use array_alignment::prelude::*;

/// The headline result: on the FFT-like workload whose optimum flips
/// mid-program, `align_then_distribute_dynamic` finds a plan that is cheaper
/// in the exact communication simulator than the best static distribution,
/// even after paying for the mid-program all-to-all.
#[test]
fn dynamic_beats_static_on_transpose_heavy_workload() {
    let program = programs::fft_like(32, 40);
    let result = align_then_distribute_dynamic(&program, 8, &DynamicConfig::default());

    // The analysis found the flip and chose to redistribute.
    assert_eq!(result.phases.len(), 2);
    assert!(result.dynamic.redistributes(), "{}", result.dynamic);

    // Model-level win...
    assert!(
        result.dynamic.model_cost < result.static_model_cost(),
        "model: dynamic {} vs static {}",
        result.dynamic.model_cost,
        result.static_model_cost()
    );

    // ...confirmed end to end in the simulator, redistribution included.
    let opts = SimOptions::default();
    let dynamic_sim = simulate_dynamic(&result, opts);
    let static_sim = simulate_static(&result, opts);
    let redist_total: f64 = dynamic_sim.redist_elements.iter().sum();
    assert!(redist_total > 0.0, "the plan pays a real redistribution");
    assert!(
        dynamic_sim.total_elements() < static_sim.total_elements(),
        "simulated: dynamic {} (incl. {} redistributed) vs static {}",
        dynamic_sim.total_elements(),
        redist_total,
        static_sim.total_elements()
    );
}

/// The redistribution price is honest: shortening the phases (fewer loop
/// trips) shrinks the per-iteration advantage until staying put wins, and
/// the solver must then keep one distribution.
#[test]
fn short_phases_do_not_redistribute() {
    let program = programs::fft_like(32, 1);
    let result = align_then_distribute_dynamic(&program, 8, &DynamicConfig::default());
    if result.phases.len() == 2 {
        // With a single trip per phase the boundary all-to-all (~n² moves)
        // dwarfs the in-phase savings (~n moves): the DAG must not switch.
        assert!(
            !result.dynamic.redistributes(),
            "switching cannot pay for itself at 1 trip: {}",
            result.dynamic
        );
    }
}

/// The dynamic plan on a single-topology program reduces to the static one.
#[test]
fn dynamic_degenerates_gracefully_on_static_programs() {
    for program in [programs::example1(64), programs::stencil2d(24, 3)] {
        let result = align_then_distribute_dynamic(&program, 4, &DynamicConfig::default());
        assert_eq!(result.phases.len(), 1, "{}", program.name);
        assert!(!result.dynamic.redistributes());
        assert_eq!(
            format!("{}", result.dynamic.per_phase[0]),
            format!("{}", result.static_result.best().distribution),
            "{}",
            program.name
        );
    }
}

/// Multigrid V-cycle: phases may or may not split, but the plan must be
/// simulatable end to end and the dynamic model must never beat static by
/// accident (i.e. must stay self-consistent under simulation).
#[test]
fn multigrid_dynamic_plan_is_consistent() {
    let program = programs::multigrid_vcycle(32, 4, 4);
    let result = align_then_distribute_dynamic(&program, 4, &DynamicConfig::default());
    let sim = simulate_dynamic(&result, SimOptions::default());
    assert!(sim.total_elements().is_finite());
    assert_eq!(sim.per_phase.len(), result.phases.len());
    assert_eq!(sim.redist_elements.len(), result.phases.len() - 1);
}

/// Every phase's candidate layer is non-empty, covers the full processor
/// count, contains every other phase's favourite (cross-seeding), and the
/// chosen plan picks within it.
#[test]
fn chosen_candidates_are_well_formed() {
    let result =
        align_then_distribute_dynamic(&programs::fft_like(16, 8), 8, &DynamicConfig::default());
    for (layer, (&chosen, dist)) in result
        .layers
        .iter()
        .zip(result.dynamic.chosen.iter().zip(&result.dynamic.per_phase))
    {
        assert!(chosen < layer.dists.len());
        assert_eq!(dist.grid().iter().product::<usize>(), 8);
        assert_eq!(format!("{}", layer.dists[chosen]), format!("{dist}"));
        // Cross-seeding: each phase's favourite grid appears in every layer.
        for other in &result.phases {
            let favourite = other.report.best().distribution.grid();
            assert!(
                layer.dists.iter().any(|d| d.grid() == favourite),
                "layer missing grid {favourite:?}"
            );
        }
    }
}
