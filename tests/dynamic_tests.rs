//! The dynamic-redistribution subsystem end to end: phase detection, the
//! layered DAG, and — the acceptance criterion — a transpose-heavy workload
//! on which the dynamic plan's *simulated* total traffic (including the
//! redistribution steps) beats the best single static distribution.

use array_alignment::prelude::*;

/// The headline result: on the FFT-like workload whose optimum flips
/// mid-program, `align_then_distribute_dynamic` finds a plan that is cheaper
/// in the exact communication simulator than the best static distribution,
/// even after paying for the mid-program all-to-all.
#[test]
fn dynamic_beats_static_on_transpose_heavy_workload() {
    let program = programs::fft_like(32, 40);
    let result = align_then_distribute_dynamic(&program, 8, &DynamicConfig::default());

    // The analysis found the flip and chose to redistribute.
    assert_eq!(result.phases.len(), 2);
    assert!(result.dynamic.redistributes(), "{}", result.dynamic);

    // Model-level win...
    assert!(
        result.dynamic.model_cost < result.static_model_cost(),
        "model: dynamic {} vs static {}",
        result.dynamic.model_cost,
        result.static_model_cost()
    );

    // ...confirmed end to end in the simulator, redistribution included.
    let opts = SimOptions::default();
    let dynamic_sim = simulate_dynamic(&result, opts);
    let static_sim = simulate_static(&result, opts);
    let redist_total: f64 = dynamic_sim.redist_elements.iter().sum();
    assert!(redist_total > 0.0, "the plan pays a real redistribution");
    assert!(
        dynamic_sim.total_elements() < static_sim.total_elements(),
        "simulated: dynamic {} (incl. {} redistributed) vs static {}",
        dynamic_sim.total_elements(),
        redist_total,
        static_sim.total_elements()
    );
}

/// The redistribution price is honest: shortening the phases (fewer loop
/// trips) shrinks the per-iteration advantage until staying put wins, and
/// the solver must then keep one distribution.
#[test]
fn short_phases_do_not_redistribute() {
    let program = programs::fft_like(32, 1);
    let result = align_then_distribute_dynamic(&program, 8, &DynamicConfig::default());
    if result.phases.len() == 2 {
        // With a single trip per phase the boundary all-to-all (~n² moves)
        // dwarfs the in-phase savings (~n moves): the DAG must not switch.
        assert!(
            !result.dynamic.redistributes(),
            "switching cannot pay for itself at 1 trip: {}",
            result.dynamic
        );
    }
}

/// The dynamic plan on a single-topology program reduces to the static one.
#[test]
fn dynamic_degenerates_gracefully_on_static_programs() {
    for program in [programs::example1(64), programs::stencil2d(24, 3)] {
        let result = align_then_distribute_dynamic(&program, 4, &DynamicConfig::default());
        assert_eq!(result.phases.len(), 1, "{}", program.name);
        assert!(!result.dynamic.redistributes());
        assert_eq!(
            format!("{}", result.dynamic.per_phase[0]),
            format!("{}", result.static_result.best().distribution),
            "{}",
            program.name
        );
    }
}

/// Multigrid V-cycle: phases may or may not split, but the plan must be
/// simulatable end to end and the dynamic model must never beat static by
/// accident (i.e. must stay self-consistent under simulation).
#[test]
fn multigrid_dynamic_plan_is_consistent() {
    let program = programs::multigrid_vcycle(32, 4, 4);
    let result = align_then_distribute_dynamic(&program, 4, &DynamicConfig::default());
    let sim = simulate_dynamic(&result, SimOptions::default());
    assert!(sim.total_elements().is_finite());
    assert_eq!(sim.per_phase.len(), result.phases.len());
    assert_eq!(sim.redist_elements.len(), result.phases.len() - 1);
}

/// Every phase's candidate layer is non-empty, covers the full processor
/// count, survives dominance pruning with the phase's own optimum intact,
/// and the chosen plan picks within it.
#[test]
fn chosen_candidates_are_well_formed() {
    let result =
        align_then_distribute_dynamic(&programs::fft_like(16, 8), 8, &DynamicConfig::default());
    for (layer, (phase, (&chosen, dist))) in result.layers.iter().zip(
        result
            .phases
            .iter()
            .zip(result.dynamic.chosen.iter().zip(&result.dynamic.per_phase)),
    ) {
        assert!(chosen < layer.dists.len());
        // Bounded by the cap plus the always-retained per-phase favourites.
        assert!(layer.dists.len() <= result.config.max_candidates_per_phase + result.phases.len());
        assert_eq!(dist.grid().iter().product::<usize>(), 8);
        assert_eq!(format!("{}", layer.dists[chosen]), format!("{dist}"));
        // The phase's own optimum is undominated on the in-phase axis, so
        // pruning can never drop it.
        let favourite = phase.report.best().distribution.grid();
        assert!(
            layer.dists.iter().any(|d| d.grid() == favourite),
            "layer missing the phase optimum {favourite:?}"
        );
    }
    // The shared pool makes "stay put" an explicit option: the dynamic plan
    // can never model worse than the best static candidate of the pool.
    assert!(result.dynamic.model_cost <= result.static_model_cost() + 1e-9);
}

/// The headline acceptance of the loop-distribution refactor: on the
/// nested-loop FFT variant the row→column flip lives *inside* one loop
/// body. Top-level segmentation sees a single atom; loop distribution
/// fissions it, the detector cuts between the fissioned halves, and the
/// dynamic plan (including the redistribution of the shared read-only
/// operand `D`) beats the best static distribution in the exact simulator.
#[test]
fn nested_flip_boundary_found_by_loop_distribution_and_dynamic_wins() {
    let program = programs::fft_like_nested(32, 40);
    assert_eq!(
        program.num_top_level_stmts(),
        1,
        "the flip hides inside one top-level loop"
    );
    let result = align_then_distribute_dynamic(&program, 8, &DynamicConfig::default());
    assert_eq!(result.phases.len(), 2, "fission exposed the boundary");
    assert_eq!(result.num_atoms(), 2);
    // Both phases originate from the same top-level statement: the cut is
    // genuinely inside the loop body.
    assert_eq!(result.phases[0].range, (0, 1));
    assert_eq!(result.phases[1].range, (0, 1));
    assert!(result.dynamic.redistributes(), "{}", result.dynamic);
    assert_eq!(result.dynamic.per_phase[0].grid(), vec![8, 1]);
    assert_eq!(result.dynamic.per_phase[1].grid(), vec![1, 8]);
    // D is live across the fissioned boundary and pays a real all-to-all.
    assert_eq!(result.live[0].len(), 1);
    assert_eq!(result.live[0][0].1, "D");

    let opts = SimOptions::default();
    let dynamic_sim = simulate_dynamic(&result, opts);
    let static_sim = simulate_static(&result, opts);
    let redist_total: f64 = dynamic_sim.redist_elements.iter().sum();
    assert!(redist_total > 0.0, "the plan pays a real redistribution");
    assert!(
        dynamic_sim.total_elements() < static_sim.total_elements(),
        "simulated: dynamic {} (incl. {} redistributed) vs static {}",
        dynamic_sim.total_elements(),
        redist_total,
        static_sim.total_elements()
    );
}

/// The single-analysis contract: the phase pipeline aligns each atom
/// exactly once, plus one whole-program alignment for the static baseline —
/// never a second per-atom or per-phase pass. Uses the thread-local
/// alignment-call counter (same pattern as `lp`'s fallback counters).
#[test]
fn each_atom_is_aligned_exactly_once() {
    use alignment_core::pipeline::{align_call_count, reset_align_call_count};
    for (program, atoms) in [
        (programs::fft_like(32, 8), 2u64),
        (programs::fft_like_nested(32, 8), 2),
        (programs::multigrid_vcycle(16, 2, 2), 4),
        (programs::multi_array_pipeline(16, 4), 6),
    ] {
        assert_eq!(program.distributable_atoms().len() as u64, atoms);
        reset_align_call_count();
        let result = align_then_distribute_dynamic(&program, 4, &DynamicConfig::default());
        assert_eq!(
            align_call_count(),
            atoms + 1,
            "{}: one alignment per atom + the static baseline",
            program.name
        );
        assert_eq!(result.num_atoms() as u64, atoms);
    }
}

/// The new phase-flip workloads run the full pipeline end to end and stay
/// self-consistent under simulation.
#[test]
fn phase_workload_suite_runs_end_to_end() {
    for (name, program) in programs::phase_workloads() {
        let result = align_then_distribute_dynamic(&program, 8, &DynamicConfig::default());
        assert!(!result.phases.is_empty(), "{name}");
        assert!(result.dynamic.model_cost.is_finite(), "{name}");
        let sim = simulate_dynamic(&result, SimOptions::default());
        assert!(sim.total_elements().is_finite(), "{name}");
        assert_eq!(sim.per_phase.len(), result.phases.len(), "{name}");
        assert_eq!(sim.redist_elements.len(), result.phases.len() - 1, "{name}");
    }
}

/// Control weights steer the conditional workload: the transpose branch is
/// absorbed by axis alignment (B is used nowhere else), so the residual is
/// the then-branch's irreducible shift — and its expected cost must scale
/// linearly with the branch probability.
#[test]
fn conditional_pipeline_weights_scale_expected_cost() {
    let often = programs::conditional_pipeline(32, 8, 0.95);
    let rarely = programs::conditional_pipeline(32, 8, 0.05);
    let (_, often_result) = align_program(&often, &PipelineConfig::default());
    let (_, rarely_result) = align_program(&rarely, &PipelineConfig::default());
    let (hi, lo) = (
        often_result.total_cost.total(),
        rarely_result.total_cost.total(),
    );
    assert!(lo > 0.0, "the shift branch is never free: {lo}");
    let ratio = hi / lo;
    assert!(
        (ratio - 0.95 / 0.05).abs() < 1e-6,
        "expected cost must scale with the branch weight: {hi} vs {lo} (ratio {ratio})"
    );
}
