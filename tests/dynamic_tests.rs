//! The dynamic-redistribution subsystem end to end: phase detection, the
//! per-array layout-state DP, and — the acceptance criteria — (1) the
//! exactness contract, priced plan cost == simulated plan cost under
//! `SimOptions::exact()` on every phase workload, and (2) transpose-heavy
//! workloads on which the dynamic plan's *simulated* total traffic
//! (redistribution included) beats the best single static distribution.

use array_alignment::prelude::*;

/// The headline result: on the FFT-like workload whose optimum flips
/// mid-program, `align_then_distribute_dynamic` finds a plan that is cheaper
/// in the exact communication simulator than the best static distribution,
/// even after paying for the mid-program all-to-all.
#[test]
fn dynamic_beats_static_on_transpose_heavy_workload() {
    let program = programs::fft_like(32, 40);
    let result = align_then_distribute_dynamic(&program, 8, &DynamicConfig::default());

    // The analysis found the flip and chose to redistribute.
    assert_eq!(result.phases.len(), 2);
    assert!(result.dynamic.redistributes(), "{}", result.dynamic);

    // Planned win (same units: simulated elements under the same options)...
    assert!(
        result.dynamic.planned_cost < result.static_planned_cost,
        "planned: dynamic {} vs static {}",
        result.dynamic.planned_cost,
        result.static_planned_cost
    );

    // ...confirmed end to end in the simulator, redistribution included.
    let opts = SimOptions::default();
    let dynamic_sim = simulate_dynamic(&result, opts);
    let static_sim = simulate_static(&result, opts);
    let redist_total: f64 = dynamic_sim.redist_elements.iter().sum();
    assert!(redist_total > 0.0, "the plan pays a real redistribution");
    assert!(
        dynamic_sim.total_elements() < static_sim.total_elements(),
        "simulated: dynamic {} (incl. {} redistributed) vs static {}",
        dynamic_sim.total_elements(),
        redist_total,
        static_sim.total_elements()
    );
}

/// The exactness contract of the per-array layout-state DP: for every phase
/// workload, the plan cost the DP priced equals what the communication
/// simulator reports for that plan — identically, under exact options. The
/// DP prices transitions per array from the true last-use layout, so there
/// is no approximation left to diverge.
#[test]
fn planned_cost_equals_simulated_cost_on_every_phase_workload() {
    for (name, program) in programs::phase_workloads() {
        let mut cfg = DynamicConfig::default();
        cfg.sim = SimOptions::exact();
        // The contract is about pricing accounting, not candidate count;
        // a lean layer keeps the exact simulations affordable.
        cfg.max_candidates_per_phase = 4;
        let result = align_then_distribute_dynamic(&program, 8, &cfg);
        let sim = simulate_dynamic(&result, SimOptions::exact());
        assert!(
            (result.dynamic.planned_cost - sim.total_elements()).abs() < 1e-6,
            "{name}: planned {} vs simulated {}",
            result.dynamic.planned_cost,
            sim.total_elements()
        );
    }
}

/// The regression the per-array DP exists for: `multi_array_pipeline`'s
/// arrays want different boundaries (A flips after the first loop, B after
/// the second). The old global-layout model forced every array through one
/// switch point and lost to static; per-array layout states let each array
/// move exactly once, where it wants to.
#[test]
fn multi_array_pipeline_dynamic_no_longer_loses_to_static() {
    let program = programs::multi_array_pipeline(32, 8);
    let result = align_then_distribute_dynamic(&program, 8, &DynamicConfig::default());
    let opts = SimOptions::default();
    let dynamic_sim = simulate_dynamic(&result, opts).total_elements();
    let static_sim = simulate_static(&result, opts).total_elements();
    assert!(
        dynamic_sim <= static_sim + 1e-9,
        "dynamic {dynamic_sim} must not lose to static {static_sim}"
    );
    // It should in fact win outright: each array pays one all-to-all
    // instead of losing whole phases.
    assert!(
        dynamic_sim < static_sim,
        "dynamic {dynamic_sim} vs static {static_sim}"
    );
    // And no boundary drags along an array the next phase never touches:
    // every priced step is for an array the destination phase references.
    for (b, steps) in result.dynamic.steps.iter().enumerate() {
        let next_refs = result.phases[b + 1].referenced();
        for step in steps {
            assert!(
                next_refs.contains(&step.array),
                "step for {} at boundary {b} prices an untouched array",
                step.name
            );
        }
    }
}

/// Reduction-heavy kernel with ragged batch extents: the reductions pin the
/// early phases, the late column work flips, and the dynamic plan beats
/// static while every per-array step is priced from a true last-use layout.
#[test]
fn reduction_tree_dynamic_beats_static() {
    let program = programs::reduction_tree(24, 24);
    let result = align_then_distribute_dynamic(&program, 8, &DynamicConfig::default());
    assert!(result.phases.len() >= 2, "the flip splits the program");
    assert!(result.dynamic.redistributes(), "{}", result.dynamic);
    let opts = SimOptions::default();
    let dynamic_sim = simulate_dynamic(&result, opts).total_elements();
    let static_sim = simulate_static(&result, opts).total_elements();
    assert!(
        dynamic_sim < static_sim,
        "dynamic {dynamic_sim} vs static {static_sim}"
    );
}

/// The redistribution price is honest: shortening the phases (fewer loop
/// trips) shrinks the per-iteration advantage until staying put wins — and
/// with DAG-driven boundary selection the unused seam then disappears from
/// the plan entirely.
#[test]
fn short_phases_do_not_redistribute() {
    let program = programs::fft_like(32, 1);
    let result = align_then_distribute_dynamic(&program, 8, &DynamicConfig::default());
    assert!(
        !result.dynamic.redistributes(),
        "switching cannot pay for itself at 1 trip: {}",
        result.dynamic
    );
    assert_eq!(
        result.phases.len(),
        1,
        "the unused boundary is coalesced away"
    );
}

/// The dynamic plan on a single-topology program reduces to a single phase
/// with no redistribution, priced no worse than the static solution.
#[test]
fn dynamic_degenerates_gracefully_on_static_programs() {
    for program in [programs::example1(64), programs::stencil2d(24, 3)] {
        let result = align_then_distribute_dynamic(&program, 4, &DynamicConfig::default());
        assert_eq!(result.phases.len(), 1, "{}", program.name);
        assert!(!result.dynamic.redistributes());
        assert!(
            result.dynamic.planned_cost <= result.static_planned_cost + 1e-9,
            "{}: dynamic {} vs static {}",
            program.name,
            result.dynamic.planned_cost,
            result.static_planned_cost
        );
    }
}

/// Multigrid V-cycle: the e18 seam regression. Atoms touching the
/// half-sized coarse grid used to be priced on their own shrunken template
/// (twice-as-fine blocks, double the shift traffic); pricing every atom on
/// the phase's covering template closes the gap, and the dynamic plan must
/// not read worse than static.
#[test]
fn multigrid_cover_template_closes_the_seam_gap() {
    let program = programs::multigrid_vcycle(32, 4, 4);
    let result = align_then_distribute_dynamic(&program, 8, &DynamicConfig::default());
    let sim = simulate_dynamic(&result, SimOptions::default());
    assert!(sim.total_elements().is_finite());
    assert_eq!(sim.per_phase.len(), result.phases.len());
    assert_eq!(sim.redist_elements.len(), result.phases.len() - 1);
    let static_sim = simulate_static(&result, SimOptions::default());
    assert!(
        sim.total_elements() <= static_sim.total_elements() + 1e-9,
        "dynamic {} vs static {} — the per-atom accounting must not be \
         conservative against the dynamic plan",
        sim.total_elements(),
        static_sim.total_elements()
    );
}

/// Every phase's candidate layer is non-empty, covers the full processor
/// count, keeps the phase's model optimum past the cap, and the chosen plan
/// picks within it.
#[test]
fn chosen_candidates_are_well_formed() {
    let result =
        align_then_distribute_dynamic(&programs::fft_like(16, 8), 8, &DynamicConfig::default());
    for (layer, (phase, (&chosen, dist))) in result.layers.iter().zip(
        result
            .phases
            .iter()
            .zip(result.dynamic.chosen.iter().zip(&result.dynamic.per_phase)),
    ) {
        assert!(chosen < layer.dists.len());
        // Bounded by the cap plus the retained favourites and forced
        // signatures (at most two per phase).
        assert!(
            layer.dists.len() <= result.config.max_candidates_per_phase + 2 * result.phases.len()
        );
        assert_eq!(dist.grid().iter().product::<usize>(), 8);
        assert_eq!(format!("{}", layer.dists[chosen]), format!("{dist}"));
        // The phase's own model optimum is always retained.
        let favourite = phase.report.best().distribution.grid();
        assert!(
            layer.dists.iter().any(|d| d.grid() == favourite),
            "layer missing the phase optimum {favourite:?}"
        );
        // Layer signatures index into the shared pool.
        for &s in &layer.sigs {
            assert!(s < result.pool.len());
        }
    }
    // The shared pool makes "stay put" an explicit option: the dynamic plan
    // can never price worse than the best static candidate of the pool.
    assert!(result.dynamic.planned_cost <= result.static_planned_cost + 1e-9);
}

/// The headline acceptance of the loop-distribution refactor: on the
/// nested-loop FFT variant the row→column flip lives *inside* one loop
/// body. Top-level segmentation sees a single atom; loop distribution
/// fissions it, the detector cuts between the fissioned halves, and the
/// dynamic plan (including the redistribution of the shared read-only
/// operand `D`) beats the best static distribution in the exact simulator.
#[test]
fn nested_flip_boundary_found_by_loop_distribution_and_dynamic_wins() {
    let program = programs::fft_like_nested(32, 40);
    assert_eq!(
        program.num_top_level_stmts(),
        1,
        "the flip hides inside one top-level loop"
    );
    let result = align_then_distribute_dynamic(&program, 8, &DynamicConfig::default());
    assert_eq!(result.phases.len(), 2, "fission exposed the boundary");
    assert_eq!(result.num_atoms(), 2);
    // Both phases originate from the same top-level statement: the cut is
    // genuinely inside the loop body.
    assert_eq!(result.phases[0].range, (0, 1));
    assert_eq!(result.phases[1].range, (0, 1));
    assert!(result.dynamic.redistributes(), "{}", result.dynamic);
    assert_eq!(result.dynamic.per_phase[0].grid(), vec![8, 1]);
    assert_eq!(result.dynamic.per_phase[1].grid(), vec![1, 8]);
    // D is live across the fissioned boundary and pays a real all-to-all,
    // priced from its true last-use phase.
    assert_eq!(result.live[0].len(), 1);
    assert_eq!(result.live[0][0].1, "D");
    assert_eq!(result.dynamic.steps[0].len(), 1);
    assert_eq!(result.dynamic.steps[0][0].src_phase, 0);

    let opts = SimOptions::default();
    let dynamic_sim = simulate_dynamic(&result, opts);
    let static_sim = simulate_static(&result, opts);
    let redist_total: f64 = dynamic_sim.redist_elements.iter().sum();
    assert!(redist_total > 0.0, "the plan pays a real redistribution");
    assert!(
        dynamic_sim.total_elements() < static_sim.total_elements(),
        "simulated: dynamic {} (incl. {} redistributed) vs static {}",
        dynamic_sim.total_elements(),
        redist_total,
        static_sim.total_elements()
    );
}

/// The single-analysis contract: the phase pipeline aligns each atom
/// exactly once, plus one whole-program alignment for the static baseline —
/// never a second per-atom or per-phase pass, not even when boundary
/// coalescing merges phases. Single-atom programs are stricter still: the
/// atom IS the whole program, so the static baseline reuses its alignment
/// and the pipeline aligns exactly once in total. Uses the thread-local
/// alignment-call counter (same pattern as `lp`'s fallback counters).
#[test]
fn each_atom_is_aligned_exactly_once() {
    use alignment_core::pipeline::{align_call_count, reset_align_call_count};
    for (program, atoms) in [
        (programs::fft_like(32, 8), 2u64),
        (programs::fft_like_nested(32, 8), 2),
        (programs::multigrid_vcycle(16, 2, 2), 4),
        (programs::multi_array_pipeline(16, 4), 6),
        (programs::reduction_tree(16, 4), 5),
    ] {
        assert_eq!(program.distributable_atoms().len() as u64, atoms);
        reset_align_call_count();
        let result = align_then_distribute_dynamic(&program, 4, &DynamicConfig::default());
        assert_eq!(
            align_call_count(),
            atoms + 1,
            "{}: one alignment per atom + the static baseline",
            program.name
        );
        assert_eq!(result.num_atoms() as u64, atoms);
    }
    // Single-atom workloads: no separate static-baseline alignment.
    for program in [
        programs::conditional_pipeline(16, 4, 0.7),
        programs::lookup_table(64, 16, 4),
    ] {
        assert_eq!(program.distributable_atoms().len(), 1);
        reset_align_call_count();
        let result = align_then_distribute_dynamic(&program, 4, &DynamicConfig::default());
        assert_eq!(
            align_call_count(),
            1,
            "{}: the atom's alignment is the static baseline's",
            program.name
        );
        assert_eq!(result.num_atoms(), 1);
    }
}

/// The phase-flip workloads run the full pipeline end to end and stay
/// self-consistent under simulation.
#[test]
fn phase_workload_suite_runs_end_to_end() {
    for (name, program) in programs::phase_workloads() {
        let result = align_then_distribute_dynamic(&program, 8, &DynamicConfig::default());
        assert!(!result.phases.is_empty(), "{name}");
        assert!(result.dynamic.planned_cost.is_finite(), "{name}");
        let sim = simulate_dynamic(&result, SimOptions::default());
        assert!(sim.total_elements().is_finite(), "{name}");
        assert_eq!(sim.per_phase.len(), result.phases.len(), "{name}");
        assert_eq!(sim.redist_elements.len(), result.phases.len() - 1, "{name}");
        // Under the pricing options the simulator must agree with the plan
        // (the exact-options contract is locked separately above).
        assert!(
            (result.dynamic.planned_cost - sim.total_elements()).abs()
                <= 1e-6 * (1.0 + result.dynamic.planned_cost.abs()),
            "{name}: planned {} vs simulated {}",
            result.dynamic.planned_cost,
            sim.total_elements()
        );
    }
}

/// Control weights steer the conditional workload: the transpose branch is
/// absorbed by axis alignment (B is used nowhere else), so the residual is
/// the then-branch's irreducible shift — and its expected cost must scale
/// linearly with the branch probability.
#[test]
fn conditional_pipeline_weights_scale_expected_cost() {
    let often = programs::conditional_pipeline(32, 8, 0.95);
    let rarely = programs::conditional_pipeline(32, 8, 0.05);
    let (_, often_result) = align_program(&often, &PipelineConfig::default());
    let (_, rarely_result) = align_program(&rarely, &PipelineConfig::default());
    let (hi, lo) = (
        often_result.total_cost.total(),
        rarely_result.total_cost.total(),
    );
    assert!(lo > 0.0, "the shift branch is never free: {lo}");
    let ratio = hi / lo;
    assert!(
        (ratio - 0.95 / 0.05).abs() < 1e-6,
        "expected cost must scale with the branch weight: {hi} vs {lo} (ratio {ratio})"
    );
}

/// Hysteresis: a large switch margin must pin the plan to a single layout
/// (the margin outweighs any in-phase saving on this small instance), and
/// the reported planned cost stays exact — it is re-priced without the
/// margin, so it still equals the simulated cost.
#[test]
fn switch_margin_pins_the_plan_and_stays_exact() {
    let program = programs::fft_like(16, 4);
    let mut cfg = DynamicConfig::default();
    cfg.switch_margin = 1e9;
    let result = align_then_distribute_dynamic(&program, 8, &cfg);
    assert!(
        !result.dynamic.redistributes(),
        "an extreme margin forbids every switch: {}",
        result.dynamic
    );
    let sim = simulate_dynamic(&result, SimOptions::default());
    assert!(
        (result.dynamic.planned_cost - sim.total_elements()).abs()
            <= 1e-6 * (1.0 + result.dynamic.planned_cost.abs()),
        "planned {} vs simulated {}",
        result.dynamic.planned_cost,
        sim.total_elements()
    );
}
