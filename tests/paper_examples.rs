//! End-to-end integration tests: every example and figure of the paper, run
//! through the full pipeline (ADG construction, axis, stride, replication,
//! mobile offsets) and checked both against the cost model and against the
//! communication simulator.

use array_alignment::prelude::*;

fn sim_machine(template_rank: usize) -> Machine {
    Machine::new(vec![4; template_rank], vec![8; template_rank])
}

#[test]
fn example1_offset_alignment_removes_all_communication() {
    let (adg, result) = align_program(&programs::example1(100), &PipelineConfig::default());
    assert!(result.total_cost.is_zero(), "{}", result.total_cost);
    let sim = simulate(
        &adg,
        &result.alignment,
        &sim_machine(result.template_rank),
        SimOptions::default(),
    );
    assert_eq!(sim.total_elements(), 0.0);
}

#[test]
fn example2_stride_alignment_removes_all_communication() {
    let (adg, result) = align_program(&programs::example2(100), &PipelineConfig::default());
    assert_eq!(result.total_cost.general, 0.0);
    assert_eq!(result.total_cost.shift, 0.0);
    let sim = simulate(
        &adg,
        &result.alignment,
        &sim_machine(result.template_rank),
        SimOptions::default(),
    );
    assert_eq!(sim.total.element_moves, 0.0);
}

#[test]
fn example3_axis_alignment_removes_the_transpose() {
    let (_, result) = align_program(&programs::example3(64), &PipelineConfig::default());
    assert!(result.total_cost.is_zero(), "{}", result.total_cost);
}

#[test]
fn figure1_mobile_alignment_is_residual_free() {
    let (adg, result) = align_program(&programs::figure1(64), &PipelineConfig::default());
    assert_eq!(result.total_cost.general, 0.0);
    assert_eq!(result.total_cost.shift, 0.0);
    // The only permitted communication is at most one broadcast of V
    // (2n = 128 elements) when the mobile alignment is realised through
    // replication.
    assert!(
        result.total_cost.broadcast <= 128.0 + 1e-6,
        "{}",
        result.total_cost
    );
    // Simulated: no point-to-point moves.
    let sim = simulate(
        &adg,
        &result.alignment,
        &sim_machine(result.template_rank),
        SimOptions::default(),
    );
    assert_eq!(
        sim.total.element_moves, 0.0,
        "simulator found residual moves"
    );
}

#[test]
fn figure1_beats_the_best_static_alignment() {
    let program = programs::figure1(64);
    let (_, mobile) = align_program(&program, &PipelineConfig::default());
    let mut static_cfg = PipelineConfig::default();
    static_cfg.offset = MobileOffsetConfig::static_only();
    static_cfg.disable_replication = true;
    let (_, fixed) = align_program(&program, &static_cfg);
    assert!(
        fixed.total_cost.total() > mobile.total_cost.total() * 4.0,
        "static {} vs mobile {}",
        fixed.total_cost,
        mobile.total_cost
    );
}

#[test]
fn example5_mobile_stride_beats_static() {
    use array_alignment::core_::axis::{solve_axes, template_rank};
    use array_alignment::core_::stride::{solve_strides, solve_strides_with};
    let program = programs::example5_default();
    let adg = build_adg(&program);
    let t = template_rank(&adg);
    let ranks: Vec<usize> = adg.port_ids().map(|p| adg.port(p).rank).collect();
    let model = CostModel::new(&adg);

    let mut mobile = ProgramAlignment::identity(t, &ranks);
    solve_axes(&adg, &mut mobile);
    solve_strides(&adg, &mut mobile);
    let mut fixed = ProgramAlignment::identity(t, &ranks);
    solve_axes(&adg, &mut fixed);
    solve_strides_with(&adg, &mut fixed, false);

    let mobile_general = model.total_cost(&mobile).general;
    let static_general = model.total_cost(&fixed).general;
    assert!(mobile_general > 0.0);
    // The paper's result: one general communication per iteration instead of
    // two. The exact ratio is slightly above 1/2 because the first iteration
    // is free either way (the section starts aligned), so allow that margin.
    assert!(
        mobile_general <= static_general * 0.52 + 1e-6,
        "mobile {mobile_general} vs static {static_general}"
    );
}

#[test]
fn figure4_replication_turns_per_iteration_broadcast_into_one() {
    let program = programs::figure4_default();
    let (_, with_cut) = align_program(&program, &PipelineConfig::default());
    let mut base_cfg = PipelineConfig::default();
    base_cfg.disable_replication = true;
    let (_, baseline) = align_program(&program, &base_cfg);
    // Baseline: t (100 elements) broadcast every iteration (200 trips).
    assert!(baseline.total_cost.broadcast >= 100.0 * 200.0 * 0.9);
    // Min-cut: a single broadcast at loop entry.
    assert!(with_cut.total_cost.broadcast <= 200.0 + 1e-6);
}

#[test]
fn realistic_workloads_run_end_to_end() {
    for program in [
        programs::stencil2d(32, 4),
        programs::skewed_sweep(32),
        programs::lookup_table(64, 32, 8),
        programs::nested_mobile(8),
    ] {
        let (adg, result) = align_program(&program, &PipelineConfig::default());
        result.alignment.validate().unwrap();
        assert!(result.total_cost.total().is_finite());
        // The ADG must be structurally sound and the simulator must run.
        adg.validate(true).unwrap();
        let sim = simulate(
            &adg,
            &result.alignment,
            &sim_machine(result.template_rank),
            SimOptions::default(),
        );
        assert!(sim.total_elements().is_finite());
    }
}

#[test]
fn stencil_alignment_is_not_worse_than_static() {
    // The naive identity "alignment" violates the hard node constraints
    // (section values are views, pinned to their subscripts), so its
    // edge-metric cost is meaningless as a baseline. Compare against the
    // *feasible* static baseline instead: mobile offsets have strictly more
    // freedom, so (rounding noise aside) they must not lose.
    let program = programs::stencil2d(32, 4);
    let (_, mobile) = align_program(&program, &PipelineConfig::default());
    let mut static_cfg = PipelineConfig::default();
    static_cfg.offset = MobileOffsetConfig::static_only();
    static_cfg.disable_replication = true;
    let (_, fixed) = align_program(&program, &static_cfg);
    assert!(
        mobile.total_cost.total() <= fixed.total_cost.total() * 1.1 + 1e-6,
        "mobile {} vs static {}",
        mobile.total_cost,
        fixed.total_cost
    );
    assert!(mobile.total_cost.total().is_finite());
}

#[test]
fn offset_strategies_all_reproduce_figure1() {
    for strategy in [
        OffsetStrategy::SingleRange,
        OffsetStrategy::FixedPartition(3),
        OffsetStrategy::FixedPartition(5),
        OffsetStrategy::ZeroCrossing { max_rounds: 3 },
        OffsetStrategy::RecursiveRefinement { max_rounds: 3 },
        OffsetStrategy::Unrolling,
    ] {
        let (_, result) = align_program(
            &programs::figure1(24),
            &PipelineConfig::with_strategy(strategy),
        );
        assert_eq!(
            result.total_cost.shift,
            0.0,
            "strategy {} left residual shifts",
            strategy.name()
        );
    }
}
