//! Coverage for `lp::presolve`: the equality-chain elimination that makes
//! the degenerate stencil offset LPs solvable.
//!
//! The offset LPs of stencil-like programs are dominated by hard equality
//! chains (port equalities and constant-shift section constraints); fed raw
//! to the dense simplex they are large, extremely degenerate and numerically
//! fragile. These tests pin the presolve's behaviour on exactly those LPs:
//! golden reductions on the real stencil constraint systems, and a seeded
//! property sweep asserting that presolved and unpresolved solves agree on
//! the objective value.

use array_alignment::core_::constraints::build_offset_constraints;
use array_alignment::prelude::*;
use bench::Rng;
use lp::presolve::Presolve;
use lp::{Problem, Relation};
use std::collections::HashSet;

/// The hard-constraint system of a program's offset LP on `axis`, after the
/// axis and stride phases (the state the RLP sees).
fn stencil_offset_lp(program: &align_ir::Program, axis: usize) -> Problem {
    use array_alignment::core_::axis::{solve_axes, template_rank};
    use array_alignment::core_::stride::solve_strides;
    let adg = build_adg(program);
    let t = template_rank(&adg);
    let ranks: Vec<usize> = adg.port_ids().map(|p| adg.port(p).rank).collect();
    let mut alignment = ProgramAlignment::identity(t, &ranks);
    solve_axes(&adg, &mut alignment);
    solve_strides(&adg, &mut alignment);
    build_offset_constraints(&adg, &alignment, axis, &HashSet::new()).problem
}

// ---------------------------------------------------------------------------
// Golden: equality-chain elimination on the degenerate stencil LPs.
// ---------------------------------------------------------------------------

#[test]
fn golden_stencil_chains_collapse() {
    // stencil2d's offset system is almost entirely equality chains: the
    // presolve must eliminate the overwhelming majority of the variables.
    let problem = stencil_offset_lp(&programs::stencil2d(24, 3), 0);
    let pre = Presolve::new(&problem).expect("stencil hard constraints are consistent");
    assert!(
        problem.num_vars() >= 40,
        "expected a sizeable LP, got {} vars",
        problem.num_vars()
    );
    assert!(
        pre.reduced.num_vars() * 2 <= problem.num_vars(),
        "presolve should eliminate at least half of the variables: {} -> {}",
        problem.num_vars(),
        pre.reduced.num_vars()
    );
    // The reduced system solves, and restoring satisfies the original.
    let sol = pre.reduced.solve().unwrap();
    let full = pre.restore(&sol.values);
    assert!(problem.is_feasible(&full, 1e-6));
}

#[test]
fn golden_stencil_presolved_objective_matches_unpresolved() {
    // Both paper stencil workloads, both template axes, hard constraints
    // with the translation pin: solve() (presolve + simplex) and the raw
    // simplex agree on the optimum (zero — the chains are satisfiable
    // exactly).
    for program in [
        programs::stencil2d(16, 2),
        programs::multigrid_vcycle(16, 2, 2),
    ] {
        for axis in 0..2 {
            let problem = stencil_offset_lp(&program, axis);
            let with = problem.solve().expect("presolved solve");
            let without = problem
                .solve_without_presolve()
                .expect("unpresolved solve of the hard system");
            assert!(
                (with.objective - without.objective).abs() < 1e-6,
                "{} axis {axis}: {} vs {}",
                program.name,
                with.objective,
                without.objective
            );
            assert!(problem.is_feasible(&with.values, 1e-6), "{}", program.name);
        }
    }
}

#[test]
fn golden_figure1_mobile_chain_pins_through_transformers() {
    // figure1's axis-0 system chains loop-transformer substitutions into the
    // mobile offsets; the presolve must keep it consistent and solvable.
    let problem = stencil_offset_lp(&programs::figure1(16), 0);
    let pre = Presolve::new(&problem).unwrap();
    let sol = pre.reduced.solve().unwrap();
    let full = pre.restore(&sol.values);
    assert!(problem.is_feasible(&full, 1e-6));
    assert!(pre.reduced.num_vars() < problem.num_vars());
}

// ---------------------------------------------------------------------------
// Seeded property sweep: presolved == unpresolved on random chain LPs.
// ---------------------------------------------------------------------------

/// A random LP shaped like the alignment RLPs: free offset variables tied by
/// equality chains with integer shifts, non-negative surrogate variables in
/// the objective, and a few inequality couplings.
fn random_chain_lp(rng: &mut Rng) -> Problem {
    let mut p = Problem::new();
    let n = rng.range_usize(3, 10);
    let xs: Vec<_> = (0..n)
        .map(|i| p.add_free_var(format!("x{i}"), 0.0))
        .collect();
    // Chain: x_{i+1} = x_i + shift_i (the section/port equality shape).
    for i in 0..n - 1 {
        let shift = rng.range_i64(-4, 4) as f64;
        p.add_constraint(vec![(xs[i + 1], 1.0), (xs[i], -1.0)], Relation::Eq, shift);
    }
    // Pin the head (the deterministic translation pin).
    p.add_constraint(
        vec![(xs[0], 1.0)],
        Relation::Eq,
        rng.range_i64(-3, 3) as f64,
    );
    // Surrogates z_j >= |x_k - target| driving the objective.
    for _ in 0..rng.range_usize(1, 4) {
        let k = rng.range_usize(0, n - 1);
        let target = rng.range_i64(-5, 5) as f64;
        let z = p.add_nonneg_var("z", 1.0);
        p.add_constraint(vec![(z, 1.0), (xs[k], -1.0)], Relation::Ge, -target);
        p.add_constraint(vec![(z, 1.0), (xs[k], 1.0)], Relation::Ge, target);
    }
    p
}

#[test]
fn property_presolved_and_unpresolved_objectives_agree() {
    let mut rng = Rng::new(20260731);
    let mut checked = 0;
    for case in 0..120 {
        let p = random_chain_lp(&mut rng);
        let with = p.solve();
        let without = p.solve_without_presolve();
        match (with, without) {
            (Ok(a), Ok(b)) => {
                checked += 1;
                assert!(
                    (a.objective - b.objective).abs() < 1e-6 * (1.0 + b.objective.abs()),
                    "case {case}: presolved {} vs unpresolved {}",
                    a.objective,
                    b.objective
                );
                assert!(p.is_feasible(&a.values, 1e-6), "case {case}");
            }
            (Err(a), Err(b)) => {
                // Both reject; the *kind* may differ (presolve detects
                // inconsistency earlier) but feasibility must agree.
                let _ = (a, b);
            }
            (with, without) => {
                panic!("case {case}: presolved {with:?} vs unpresolved {without:?}")
            }
        }
    }
    assert!(checked >= 100, "sweep must mostly solve: {checked}/120");
}
