//! Cross-crate property-based tests on the invariants the reproduction
//! depends on:
//!
//! * triplet closed forms equal direct sums;
//! * affine substitution commutes with evaluation;
//! * the simplex produces feasible, optimal-or-better-than-sampled points;
//! * max-flow equals the min-cut capacity and the cut separates s from t;
//! * replication labeling by min-cut is never worse than random labelings;
//! * the alignment pipeline never loses to the identity alignment.
//!
//! Cases are drawn from the in-repo deterministic generator (`bench::Rng`) —
//! the container has no registry access, so proptest is replaced by seeded
//! sweeps: same coverage style, fully reproducible failures (the failing
//! case is in the panic message).

use align_ir::{Affine, LivId, Triplet};
use bench::Rng;
use lp::{Problem, Relation};
use netflow::FlowNetwork;

#[test]
fn triplet_sums_match_enumeration() {
    let mut rng = Rng::new(1001);
    for _ in 0..128 {
        let lo = rng.range_i64(-50, 49);
        let len = rng.range_i64(0, 59);
        let stride = rng.range_i64(1, 6);
        let t = Triplet::new(lo, lo + len, stride);
        let label = format!("triplet {lo}:{}:{stride}", lo + len);
        assert_eq!(t.count(), t.iter().count() as i64, "{label}");
        assert_eq!(t.sum_i(), t.iter().sum::<i64>(), "{label}");
        assert_eq!(
            t.sum_i_sq(),
            t.iter().map(|i| i * i).sum::<i64>(),
            "{label}"
        );
    }
}

#[test]
fn triplet_split_preserves_contents() {
    let mut rng = Rng::new(1002);
    for _ in 0..128 {
        let lo = rng.range_i64(-20, 19);
        let len = rng.range_i64(0, 39);
        let stride = rng.range_i64(1, 4);
        let m = rng.range_usize(1, 6);
        let t = Triplet::new(lo, lo + len, stride);
        let merged: Vec<i64> = t
            .split(m)
            .iter()
            .flat_map(|p| p.iter().collect::<Vec<_>>())
            .collect();
        assert_eq!(
            merged,
            t.iter().collect::<Vec<i64>>(),
            "triplet {lo}:{}:{stride} split {m}",
            lo + len
        );
    }
}

#[test]
fn affine_substitution_commutes_with_evaluation() {
    let mut rng = Rng::new(1003);
    let liv = LivId(0);
    for _ in 0..128 {
        let (a0, a1, b0, b1) = (
            rng.range_i64(-10, 9),
            rng.range_i64(-10, 9),
            rng.range_i64(-10, 9),
            rng.range_i64(-10, 9),
        );
        let k = rng.range_i64(-20, 19);
        // f(k) with k := g(k) evaluated at k equals f(g(k)).
        let f = Affine::new(a0, [(liv, a1)]);
        let g = Affine::new(b0, [(liv, b1)]);
        let composed = f.substitute(liv, &g);
        let direct = f.eval_assoc(&[(liv, g.eval_assoc(&[(liv, k)]))]);
        assert_eq!(
            composed.eval_assoc(&[(liv, k)]),
            direct,
            "f={a0}+{a1}k g={b0}+{b1}k at k={k}"
        );
    }
}

#[test]
fn simplex_solution_is_feasible_and_not_worse_than_corners() {
    let mut rng = Rng::new(1004);
    for _ in 0..128 {
        let c1 = rng.range_f64(0.1, 5.0);
        let c2 = rng.range_f64(0.1, 5.0);
        let b1 = rng.range_f64(1.0, 20.0);
        let b2 = rng.range_f64(1.0, 20.0);
        // min c1 x + c2 y  s.t.  x + y >= b1,  x <= b2,  x,y >= 0.
        let mut p = Problem::new();
        let x = p.add_nonneg_var("x", c1);
        let y = p.add_nonneg_var("y", c2);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, b1);
        p.add_constraint(vec![(x, 1.0)], Relation::Le, b2);
        let sol = p.solve().unwrap();
        let label = format!("c=({c1:.3},{c2:.3}) b=({b1:.3},{b2:.3})");
        assert!(p.is_feasible(&sol.values, 1e-6), "{label}");
        // Compare against the two obvious corner candidates.
        let corner1 = c2 * b1; // x = 0, y = b1
        let corner2 = c1 * b2 + c2 * (b1 - b2).max(0.0); // x = min(b1,b2)
        assert!(sol.objective <= corner1 + 1e-6, "{label}");
        assert!(sol.objective <= corner2 + 1e-6, "{label}");
    }
}

#[test]
fn max_flow_equals_cut_and_separates() {
    let mut rng = Rng::new(1005);
    for case in 0..128 {
        let mut g = FlowNetwork::new(10);
        let num_edges = rng.range_usize(1, 30);
        for _ in 0..num_edges {
            let a = rng.range_usize(0, 8);
            let b = rng.range_usize(0, 8);
            let c = rng.range_i64(1, 49) as u64;
            g.add_edge(a, b, c);
        }
        // source 8 -> vertex 0, vertex 7 -> sink 9
        g.add_edge(8, 0, 100);
        g.add_edge(7, 9, 100);
        let cut = g.min_cut(8, 9);
        assert!(cut.source_side[8], "case {case}");
        assert!(!cut.source_side[9], "case {case}");
        // Flow value equals the capacity of the reported cut edges.
        assert_eq!(cut.value, cut.edge_capacity_sum(), "case {case}");
    }
}

mod fission_properties {
    use align_ir::fission::{arrays_assigned, arrays_touched};
    use align_ir::Stmt;
    use bench::{random_loop_program, RandomProgramConfig};

    /// Flatten to the sequence of assignment statements, ignoring loop and
    /// conditional structure.
    fn flat_assigns(stmts: &[Stmt]) -> Vec<Stmt> {
        let mut out = Vec::new();
        fn go(stmts: &[Stmt], out: &mut Vec<Stmt>) {
            for s in stmts {
                match s {
                    Stmt::Assign { .. } => out.push(s.clone()),
                    Stmt::Loop { body, .. } => go(body, out),
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        go(then_body, out);
                        go(else_body, out);
                    }
                }
            }
        }
        go(stmts, &mut out);
        out
    }

    /// Loop distribution preserves the statement multiset (in fact the full
    /// flattened order) and the def/use discipline: adjacent atoms cut from
    /// the same statement share no array that either side assigns, so no
    /// dependence is reordered.
    #[test]
    fn fission_preserves_statements_and_def_use_order() {
        let mut fissioned_seeds = 0;
        for seed in 0..32 {
            let program = random_loop_program(RandomProgramConfig {
                seed,
                trips: 8,
                statements: 4,
                array_size: 64,
                num_arrays: 5,
                ..RandomProgramConfig::default()
            });
            let atoms = program.distributable_atoms();
            let distributed = program.distribute_loops();
            distributed
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));

            // Statement multiset and order: fission only regroups.
            assert_eq!(
                flat_assigns(&program.body),
                flat_assigns(&distributed.body),
                "seed {seed}"
            );
            assert_eq!(atoms.len(), distributed.num_top_level_stmts());
            assert!(atoms.len() >= program.num_top_level_stmts());

            // Def/use order: every cut separates write-disjoint groups.
            for w in atoms.windows(2) {
                if w[0].stmt_index != w[1].stmt_index {
                    continue; // different statements were never one loop
                }
                let a = std::slice::from_ref(&w[0].stmt);
                let b = std::slice::from_ref(&w[1].stmt);
                assert!(
                    arrays_assigned(b)
                        .intersection(&arrays_touched(a, &program))
                        .next()
                        .is_none(),
                    "seed {seed}: suffix writes what prefix touches"
                );
                assert!(
                    arrays_assigned(a)
                        .intersection(&arrays_touched(b, &program))
                        .next()
                        .is_none(),
                    "seed {seed}: prefix writes what suffix touches"
                );
            }
            if atoms.len() > program.num_top_level_stmts() {
                fissioned_seeds += 1;
            }
        }
        assert!(
            fissioned_seeds > 0,
            "the sweep must exercise at least one real fission"
        );
    }

    /// Fission is idempotent: distributing an already-distributed program
    /// changes nothing.
    #[test]
    fn fission_is_idempotent() {
        for seed in 0..8 {
            let program = random_loop_program(RandomProgramConfig {
                seed,
                trips: 8,
                statements: 4,
                array_size: 64,
                num_arrays: 5,
                ..RandomProgramConfig::default()
            });
            let once = program.distribute_loops();
            let twice = once.distribute_loops();
            assert_eq!(once.body, twice.body, "seed {seed}");
        }
    }
}

mod alignment_properties {
    use adg::build_adg;
    use alignment_core::pipeline::{align_program, PipelineConfig};
    use alignment_core::ProgramAlignment;
    use bench::{random_loop_program, RandomProgramConfig};

    #[test]
    fn pipeline_never_loses_to_the_static_baseline() {
        // The baseline is the *feasible* static alignment (array homes
        // pinned), not the naive identity: the identity violates the hard
        // node constraints, and the edge-metric cost model prices such
        // infeasible placements as spuriously free. Mobile offsets have
        // strictly more freedom than static ones, so up to RLP rounding
        // noise the full pipeline must not lose.
        use alignment_core::MobileOffsetConfig;
        // Four seeds: each case runs two full pipelines over LPs that land in
        // the solver's hardest regime, so the sweep is kept small.
        for seed in 0..4 {
            let program = random_loop_program(RandomProgramConfig {
                seed,
                trips: 8,
                statements: 3,
                array_size: 48,
                ..RandomProgramConfig::default()
            });
            let (_, result) = align_program(&program, &PipelineConfig::default());
            let mut static_cfg = PipelineConfig::default();
            static_cfg.offset = MobileOffsetConfig::static_only();
            static_cfg.disable_replication = true;
            let (_, fixed) = align_program(&program, &static_cfg);
            let aligned_cost = result.total_cost.total();
            let static_cost = fixed.total_cost.total();
            assert!(
                aligned_cost <= static_cost * 1.1 + 1e-6,
                "seed {seed}: aligned {aligned_cost} vs static {static_cost}"
            );
            assert!(aligned_cost.is_finite(), "seed {seed}");
        }
    }

    #[test]
    fn adg_structure_is_always_valid() {
        for seed in 0..12 {
            let program = random_loop_program(RandomProgramConfig {
                seed,
                trips: 8,
                statements: 4,
                array_size: 32,
                ..RandomProgramConfig::default()
            });
            let adg = build_adg(&program);
            assert!(adg.validate(true).is_ok(), "seed {seed}");
            // Every use port has exactly one incoming edge (SSA discipline).
            for pid in adg.port_ids() {
                if !adg.port(pid).is_def {
                    assert!(
                        adg.in_edge(pid).is_some() || adg.out_edges(pid).is_empty(),
                        "seed {seed} port {pid}"
                    );
                }
            }
        }
    }

    #[test]
    fn replication_min_cut_is_no_worse_than_brute_force() {
        use alignment_core::axis::{solve_axes, template_rank};
        use alignment_core::replication::{brute_force_axis_cost, label_axis, ReplicationConfig};
        use std::collections::HashSet;
        for seed in 0..12 {
            let program = random_loop_program(RandomProgramConfig {
                seed,
                trips: 6,
                statements: 2,
                array_size: 32,
                num_arrays: 3,
                ..RandomProgramConfig::default()
            });
            let adg = build_adg(&program);
            let t = template_rank(&adg);
            let ranks: Vec<usize> = adg.port_ids().map(|p| adg.port(p).rank).collect();
            let mut alignment = ProgramAlignment::identity(t, &ranks);
            solve_axes(&adg, &mut alignment);
            for axis in 0..t {
                let labeling = label_axis(
                    &adg,
                    &alignment,
                    axis,
                    &HashSet::new(),
                    &ReplicationConfig::default(),
                );
                if let Some(best) = brute_force_axis_cost(
                    &adg,
                    &alignment,
                    axis,
                    &HashSet::new(),
                    &ReplicationConfig::default(),
                    16,
                ) {
                    assert!(
                        (labeling.broadcast_cost - best).abs() < 1e-6,
                        "seed {seed} axis {axis}: min-cut {} vs brute force {best}",
                        labeling.broadcast_cost
                    );
                }
            }
        }
    }
}
