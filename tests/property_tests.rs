//! Cross-crate property-based tests (proptest) on the invariants the
//! reproduction depends on:
//!
//! * triplet closed forms equal direct sums;
//! * affine substitution commutes with evaluation;
//! * the simplex produces feasible, optimal-or-better-than-sampled points;
//! * max-flow equals the min-cut capacity and the cut separates s from t;
//! * replication labeling by min-cut is never worse than random labelings;
//! * the cost model is zero exactly when positions coincide, and the
//!   grid-metric part obeys the triangle inequality.

use align_ir::{Affine, LivId, Triplet};
use lp::{Problem, Relation};
use netflow::FlowNetwork;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn triplet_sums_match_enumeration(lo in -50i64..50, len in 0i64..60, stride in 1i64..7) {
        let t = Triplet::new(lo, lo + len, stride);
        prop_assert_eq!(t.count(), t.iter().count() as i64);
        prop_assert_eq!(t.sum_i(), t.iter().sum::<i64>());
        prop_assert_eq!(t.sum_i_sq(), t.iter().map(|i| i * i).sum::<i64>());
    }

    #[test]
    fn triplet_split_preserves_contents(lo in -20i64..20, len in 0i64..40, stride in 1i64..5, m in 1usize..6) {
        let t = Triplet::new(lo, lo + len, stride);
        let merged: Vec<i64> = t.split(m).iter().flat_map(|p| p.iter().collect::<Vec<_>>()).collect();
        prop_assert_eq!(merged, t.iter().collect::<Vec<_>>());
    }

    #[test]
    fn affine_substitution_commutes_with_evaluation(
        a0 in -10i64..10, a1 in -10i64..10, b0 in -10i64..10, b1 in -10i64..10, k in -20i64..20
    ) {
        // f(k) with k := g(k) evaluated at k equals f(g(k)).
        let liv = LivId(0);
        let f = Affine::new(a0, [(liv, a1)]);
        let g = Affine::new(b0, [(liv, b1)]);
        let composed = f.substitute(liv, &g);
        let direct = f.eval_assoc(&[(liv, g.eval_assoc(&[(liv, k)]))]);
        prop_assert_eq!(composed.eval_assoc(&[(liv, k)]), direct);
    }

    #[test]
    fn simplex_solution_is_feasible_and_not_worse_than_corners(
        c1 in 0.1f64..5.0, c2 in 0.1f64..5.0,
        b1 in 1.0f64..20.0, b2 in 1.0f64..20.0,
    ) {
        // min c1 x + c2 y  s.t.  x + y >= b1,  x <= b2,  x,y >= 0.
        let mut p = Problem::new();
        let x = p.add_nonneg_var("x", c1);
        let y = p.add_nonneg_var("y", c2);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, b1);
        p.add_constraint(vec![(x, 1.0)], Relation::Le, b2);
        let sol = p.solve().unwrap();
        prop_assert!(p.is_feasible(&sol.values, 1e-6));
        // Compare against the two obvious corner candidates.
        let corner1 = c2 * b1;                       // x = 0, y = b1
        let corner2 = c1 * b2 + c2 * (b1 - b2).max(0.0); // x = min(b1,b2)
        prop_assert!(sol.objective <= corner1 + 1e-6);
        prop_assert!(sol.objective <= corner2 + 1e-6);
    }

    #[test]
    fn max_flow_equals_cut_and_separates(edges in proptest::collection::vec((0usize..8, 0usize..8, 1u64..50), 1..30)) {
        let mut g = FlowNetwork::new(10);
        for (a, b, c) in &edges {
            g.add_edge(*a, *b, *c);
        }
        // source 8 -> random vertices, vertices -> sink 9
        g.add_edge(8, 0, 100);
        g.add_edge(7, 9, 100);
        let cut = g.min_cut(8, 9);
        prop_assert!(cut.source_side[8]);
        prop_assert!(!cut.source_side[9]);
        // Flow value equals the capacity of the reported cut edges.
        prop_assert_eq!(cut.value, cut.edge_capacity_sum());
    }
}

mod alignment_properties {
    use super::*;
    use adg::build_adg;
    use alignment_core::pipeline::{align_program, PipelineConfig};
    use alignment_core::{CostModel, ProgramAlignment};
    use bench::{random_loop_program, RandomProgramConfig};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn pipeline_never_loses_to_the_naive_identity_alignment(seed in 0u64..500) {
            let program = random_loop_program(RandomProgramConfig {
                seed,
                trips: 12,
                statements: 3,
                array_size: 64,
                ..RandomProgramConfig::default()
            });
            let (adg, result) = align_program(&program, &PipelineConfig::default());
            let ranks: Vec<usize> = adg.port_ids().map(|p| adg.port(p).rank).collect();
            let naive = ProgramAlignment::identity(result.template_rank, &ranks);
            let model = CostModel::new(&adg);
            let aligned_cost = model.total_cost(&result.alignment).total();
            let naive_cost = model.total_cost(&naive).total();
            prop_assert!(
                aligned_cost <= naive_cost + 1e-6,
                "aligned {} vs naive {}", aligned_cost, naive_cost
            );
        }

        #[test]
        fn adg_structure_is_always_valid(seed in 0u64..500) {
            let program = random_loop_program(RandomProgramConfig {
                seed,
                trips: 8,
                statements: 4,
                array_size: 32,
                ..RandomProgramConfig::default()
            });
            let adg = build_adg(&program);
            prop_assert!(adg.validate(true).is_ok());
            // Every use port has exactly one incoming edge (SSA discipline).
            for pid in adg.port_ids() {
                if !adg.port(pid).is_def {
                    prop_assert!(adg.in_edge(pid).is_some() || adg.out_edges(pid).is_empty());
                }
            }
        }

        #[test]
        fn replication_min_cut_is_no_worse_than_random_labelings(seed in 0u64..200) {
            use alignment_core::axis::{solve_axes, template_rank};
            use alignment_core::replication::{brute_force_axis_cost, label_axis, ReplicationConfig};
            use std::collections::HashSet;
            let program = random_loop_program(RandomProgramConfig {
                seed,
                trips: 6,
                statements: 2,
                array_size: 32,
                num_arrays: 3,
                ..RandomProgramConfig::default()
            });
            let adg = build_adg(&program);
            let t = template_rank(&adg);
            let ranks: Vec<usize> = adg.port_ids().map(|p| adg.port(p).rank).collect();
            let mut alignment = ProgramAlignment::identity(t, &ranks);
            solve_axes(&adg, &mut alignment);
            for axis in 0..t {
                let labeling = label_axis(&adg, &alignment, axis, &HashSet::new(), &ReplicationConfig::default());
                if let Some(best) = brute_force_axis_cost(&adg, &alignment, axis, &HashSet::new(), &ReplicationConfig::default(), 16) {
                    prop_assert!((labeling.broadcast_cost - best).abs() < 1e-6,
                        "min-cut {} vs brute force {}", labeling.broadcast_cost, best);
                }
            }
        }
    }
}
