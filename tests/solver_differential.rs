//! Differential property suite: the revised simplex (production path) and
//! the dense tableau simplex (oracle) share no pivoting code, so agreement
//! on random feasible / infeasible / degenerate LPs is strong evidence both
//! are right.
//!
//! Seeded with the in-repo [`bench::Rng`] (no external crates — repo
//! policy), so every case is reproducible from its seed printed on failure.

use bench::Rng;
use lp::{Problem, Relation, SolveError};

/// Outcome of a solve, reduced to what the two solvers must agree on.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    Optimal(f64),
    Infeasible,
    Unbounded,
    /// Numerical failure — tolerated, but the suite asserts it stays rare.
    Failed,
}

fn outcome(result: Result<lp::Solution, SolveError>) -> Outcome {
    match result {
        Ok(s) => Outcome::Optimal(s.objective),
        Err(SolveError::Infeasible) => Outcome::Infeasible,
        Err(SolveError::Unbounded) => Outcome::Unbounded,
        Err(SolveError::IterationLimit) => Outcome::Failed,
    }
}

/// A random LP with a mix of bound kinds, relations and (optionally) forced
/// degeneracy: duplicate rows, zero right-hand sides and equality chains —
/// the shapes the alignment analysis actually produces.
fn random_problem(seed: u64) -> Problem {
    let mut rng = Rng::new(seed);
    let n = rng.range_usize(2, 9);
    let mut p = Problem::new();
    let vars: Vec<_> = (0..n)
        .map(|i| {
            let obj = rng.range_f64(-3.0, 3.0);
            match rng.range_usize(0, 4) {
                0 => p.add_free_var(format!("f{i}"), obj),
                1 => p.add_nonneg_var(format!("n{i}"), obj),
                2 => {
                    let lo = rng.range_f64(-5.0, 0.0);
                    let hi = lo + rng.range_f64(0.0, 8.0);
                    p.add_var(format!("b{i}"), lo, hi, obj)
                }
                _ => p.add_var(
                    format!("u{i}"),
                    f64::NEG_INFINITY,
                    rng.range_f64(0.0, 6.0),
                    obj,
                ),
            }
        })
        .collect();

    type Row = (Vec<(lp::VarId, f64)>, Relation, f64);
    let m = rng.range_usize(1, 11);
    let mut rows: Vec<Row> = Vec::new();
    for _ in 0..m {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.bool_with(0.5) {
                terms.push((v, rng.range_i64(-3, 3) as f64));
            }
        }
        if terms.iter().all(|&(_, a)| a == 0.0) {
            continue;
        }
        let relation = match rng.range_usize(0, 3) {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        // Zero right-hand sides make the origin-adjacent vertices degenerate.
        let rhs = if rng.bool_with(0.3) {
            0.0
        } else {
            rng.range_i64(-6, 6) as f64
        };
        rows.push((terms, relation, rhs));
    }
    // Duplicate a row now and then: redundant constraints are the classic
    // degeneracy trigger.
    if !rows.is_empty() && rng.bool_with(0.4) {
        let i = rng.range_usize(0, rows.len());
        rows.push(rows[i].clone());
    }
    // And an equality chain, the presolve's home turf.
    if n >= 2 && rng.bool_with(0.5) {
        let a = vars[rng.range_usize(0, n)];
        let b = vars[rng.range_usize(0, n)];
        if a != b {
            rows.push((
                vec![(a, 1.0), (b, -1.0)],
                Relation::Eq,
                rng.range_i64(-2, 2) as f64,
            ));
        }
    }
    for (terms, relation, rhs) in rows {
        p.add_constraint(terms, relation, rhs);
    }
    p
}

/// The two solvers must agree on status; on optimality, objectives must
/// match within epsilon and both witnesses must be feasible.
fn check_agreement(seed: u64, p: &Problem) -> Result<(), String> {
    let revised = p.solve_without_presolve();
    let tableau = p.solve_tableau();
    // `solve_tableau` runs the presolve; re-deriving the revised result
    // through the identical presolve keeps the comparison apples-to-apples
    // while still exercising the raw solver above.
    let revised_pre = p.solve();

    if let Ok(s) = &revised {
        if !p.is_feasible(&s.values, 1e-5) {
            return Err(format!("seed {seed}: revised returned infeasible point"));
        }
    }
    if let Ok(s) = &revised_pre {
        if !p.is_feasible(&s.values, 1e-5) {
            return Err(format!(
                "seed {seed}: revised(+presolve) returned infeasible point"
            ));
        }
    }
    if let Ok(s) = &tableau {
        if !p.is_feasible(&s.values, 1e-5) {
            return Err(format!("seed {seed}: tableau returned infeasible point"));
        }
    }

    let oracle = outcome(tableau);
    for (name, a) in [
        ("revised-raw", outcome(revised)),
        ("revised+presolve", outcome(revised_pre)),
    ] {
        match (&a, &oracle) {
            // Numerical failures are screened out (and rationed) by the
            // caller before check_agreement runs.
            (Outcome::Failed, _) | (_, Outcome::Failed) => {}
            (Outcome::Optimal(x), Outcome::Optimal(y)) => {
                let tol = 1e-5 * (1.0 + x.abs().max(y.abs()));
                if (x - y).abs() > tol {
                    return Err(format!("seed {seed}: {name} objective {x} vs tableau {y}"));
                }
            }
            (x, y) if x == y => {}
            (x, y) => {
                return Err(format!("seed {seed}: {name} status {x:?} vs tableau {y:?}"));
            }
        }
    }
    Ok(())
}

#[test]
fn revised_and_tableau_agree_on_random_lps() {
    let mut failures = Vec::new();
    let mut numerical_failures = 0usize;
    let cases = 400;
    for seed in 0..cases {
        let p = random_problem(seed * 7919 + 13);
        // Screen out (and ration) numerical failures from every path under
        // test, the presolved production one included, so a solver cannot
        // rot behind tolerated Failed outcomes.
        if outcome(p.solve_without_presolve()) == Outcome::Failed
            || outcome(p.solve_tableau()) == Outcome::Failed
            || outcome(p.solve()) == Outcome::Failed
        {
            numerical_failures += 1;
            continue;
        }
        if let Err(e) = check_agreement(seed, &p) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "{} disagreement(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
    // A handful of numerically hopeless instances is acceptable; a pile of
    // them means a solver rots.
    assert!(
        numerical_failures <= cases as usize / 20,
        "too many numerical failures: {numerical_failures}/{cases}"
    );
}

#[test]
fn solvers_agree_on_degenerate_equality_chains() {
    // Directed version of the alignment analysis's worst case: long chains
    // of pairwise equalities over free variables with a couple of bounded
    // anchors — the presolve collapses most of it, the solvers must agree
    // on what remains.
    for seed in 0..25u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9E37) + 5);
        let n = rng.range_usize(4, 12);
        let mut p = Problem::new();
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_free_var(format!("x{i}"), rng.range_f64(-1.0, 1.0)))
            .collect();
        for w in vars.windows(2) {
            p.add_constraint(
                vec![(w[0], 1.0), (w[1], -1.0)],
                Relation::Eq,
                rng.range_i64(-3, 3) as f64,
            );
        }
        // Anchor the chain so the LP is bounded.
        p.add_constraint(vec![(vars[0], 1.0)], Relation::Ge, -10.0);
        p.add_constraint(vec![(vars[0], 1.0)], Relation::Le, 10.0);
        if let Err(e) = check_agreement(seed, &p) {
            panic!("{e}");
        }
    }
}

/// A wide, sparse LP in the exact shapes that stress the sparse kernel: many
/// columns over few rows, rows with at most two structural nonzeros
/// (difference constraints — what the mobile-offset formulation emits),
/// duplicated terms the standard-form builder must combine, empty
/// (constraint-free) columns, and near-duplicate rows that push the basis
/// toward singularity and force refactorisations.
fn sparse_problem(seed: u64) -> Problem {
    let mut rng = Rng::new(seed);
    let n = rng.range_usize(8, 25);
    let mut p = Problem::new();
    let vars: Vec<_> = (0..n)
        .map(|i| match rng.range_usize(0, 3) {
            0 => p.add_nonneg_var(format!("n{i}"), rng.range_f64(0.0, 3.0)),
            1 => {
                let lo = rng.range_f64(-4.0, 0.0);
                p.add_var(
                    format!("b{i}"),
                    lo,
                    lo + rng.range_f64(0.5, 6.0),
                    rng.range_f64(-3.0, 3.0),
                )
            }
            _ => p.add_free_var(format!("f{i}"), rng.range_f64(-1.0, 1.0)),
        })
        .collect();

    type Row = (Vec<(lp::VarId, f64)>, Relation, f64);
    // Few rows over many columns: most columns never enter a constraint,
    // so the CSC matrix carries genuinely empty columns.
    let m = rng.range_usize(3, 13);
    let mut rows: Vec<Row> = Vec::new();
    for _ in 0..m {
        let a = vars[rng.range_usize(0, n)];
        let b = vars[rng.range_usize(0, n)];
        let mut terms = vec![(a, 1.0)];
        if a == b {
            // A duplicated term on the same variable: the standard-form
            // builder's sort + dedup pass must combine the coefficients.
            terms.push((a, rng.range_i64(-1, 2) as f64));
        } else {
            terms.push((b, -1.0));
            if rng.bool_with(0.25) {
                terms.push((b, rng.range_i64(-2, 2) as f64));
            }
        }
        if terms.iter().map(|&(_, a)| a).sum::<f64>() == 0.0 && terms.len() == 2 && a == b {
            continue; // fully cancelled row
        }
        let relation = match rng.range_usize(0, 3) {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        rows.push((terms, relation, rng.range_i64(-4, 4) as f64));
    }
    // A near-duplicate of an existing row: an epsilon-perturbed copy makes
    // the basis nearly singular, exercising the LU threshold pivoting and
    // the refactorisation fallback. The perturbation (1e-5) sits well above
    // the solvers' pivot tolerances — a smaller one makes feasibility hinge
    // on a pivot no fixed-tolerance solver can trust, and the oracles
    // legitimately disagree.
    if !rows.is_empty() && rng.bool_with(0.5) {
        let i = rng.range_usize(0, rows.len());
        let (mut terms, relation, rhs) = rows[i].clone();
        if let Some(t) = terms.first_mut() {
            t.1 += 1e-5;
        }
        rows.push((terms, relation, rhs));
    }
    for (terms, relation, rhs) in rows {
        p.add_constraint(terms, relation, rhs);
    }
    // Anchor a few variables so difference chains over free variables stay
    // bounded often enough that the optimal-objective comparison bites.
    for &v in &vars {
        if rng.bool_with(0.3) {
            p.add_constraint(vec![(v, 1.0)], Relation::Le, 8.0);
            p.add_constraint(vec![(v, 1.0)], Relation::Ge, -8.0);
        }
    }
    p
}

#[test]
fn revised_and_tableau_agree_on_sparse_stressing_lps() {
    let mut failures = Vec::new();
    let mut numerical_failures = 0usize;
    let cases = 120;
    for seed in 0..cases {
        let p = sparse_problem(seed * 6361 + 29);
        if outcome(p.solve_without_presolve()) == Outcome::Failed
            || outcome(p.solve_tableau()) == Outcome::Failed
            || outcome(p.solve()) == Outcome::Failed
        {
            numerical_failures += 1;
            continue;
        }
        if let Err(e) = check_agreement(seed, &p) {
            failures.push(e);
        }
        // Both basis-inverse kernels must produce the same outcome — the
        // kernel changes how the basis inverse is applied, never the
        // pivoting decisions.
        let mut eta = p.clone();
        eta.set_kernel(lp::Kernel::EtaFile);
        match (outcome(p.solve()), outcome(eta.solve())) {
            (Outcome::Failed, _) | (_, Outcome::Failed) => {}
            (Outcome::Optimal(x), Outcome::Optimal(y)) => {
                if (x - y).abs() > 1e-6 * (1.0 + x.abs().max(y.abs())) {
                    failures.push(format!("seed {seed}: kernels disagree: {x} vs {y}"));
                }
            }
            (x, y) if x == y => {}
            (x, y) => failures.push(format!("seed {seed}: kernel status {x:?} vs {y:?}")),
        }
    }
    assert!(
        failures.is_empty(),
        "{} disagreement(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
    assert!(
        numerical_failures <= cases as usize / 20,
        "too many numerical failures: {numerical_failures}/{cases}"
    );
}

#[test]
fn solvers_agree_on_infeasible_systems() {
    for seed in 0..25u64 {
        let mut rng = Rng::new(seed * 31 + 2);
        let mut p = Problem::new();
        let x = p.add_nonneg_var("x", rng.range_f64(0.1, 2.0));
        let y = p.add_nonneg_var("y", rng.range_f64(0.1, 2.0));
        let k = rng.range_i64(1, 5) as f64;
        // x + y <= k and x + y >= k + gap: plainly infeasible.
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, k);
        p.add_constraint(
            vec![(x, 1.0), (y, 1.0)],
            Relation::Ge,
            k + rng.range_f64(0.5, 3.0),
        );
        assert_eq!(outcome(p.solve_without_presolve()), Outcome::Infeasible);
        assert_eq!(outcome(p.solve_tableau()), Outcome::Infeasible);
        assert_eq!(outcome(p.solve()), Outcome::Infeasible);
    }
}
