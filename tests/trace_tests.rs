//! The observability layer end to end: a full dynamic solve leaves behind a
//! Chrome-exportable trace with spans from every pipeline layer, identical
//! solves emit identical counters (so per-run `metrics` in bench records
//! are meaningful baselines), and the plan explainer renders exactly the
//! costs the plan was priced from.
//!
//! Tracing state is thread-local and every `#[test]` runs on its own
//! thread, so these tests cannot observe each other (or anyone else).

use array_alignment::prelude::*;
use bench::json::Json;

/// The five instrumented pipeline layers (the `layer.` prefix of span and
/// counter names, and the Chrome event category).
const LAYERS: [&str; 5] = ["lp", "align", "distrib", "phases", "commsim"];

fn run_solve(program: &Program) -> DynamicPipelineResult {
    align_then_distribute_dynamic(program, 8, &DynamicConfig::default())
}

#[test]
fn chrome_trace_covers_every_layer_on_every_phase_workload() {
    for (name, program) in programs::phase_workloads() {
        trace::reset();
        trace::configure(TraceConfig::enabled());
        let _ = run_solve(&program);
        trace::configure(TraceConfig::default());
        let t = trace::take();

        // At least one span from each pipeline layer.
        let per_layer = t.spans_per_layer();
        for layer in LAYERS {
            assert!(
                per_layer.get(layer).copied().unwrap_or(0) >= 1,
                "{name}: no `{layer}` span; got {per_layer:?}"
            );
        }

        // Spans are properly nested: parents precede children, children
        // are contained in the parent's interval, depths are consistent,
        // and no duration is negative (u64 by construction, but the
        // saturating close must not produce wraparound-sized values).
        for (i, s) in t.spans.iter().enumerate() {
            assert!(s.dur_ns < u64::MAX / 2, "{name}: span {i} duration wrapped");
            match s.parent {
                Some(p) => {
                    assert!(p < i, "{name}: span {i} precedes its parent {p}");
                    let parent = &t.spans[p];
                    assert_eq!(s.depth, parent.depth + 1, "{name}: bad depth at {i}");
                    assert!(
                        s.start_ns >= parent.start_ns,
                        "{name}: span {i} starts early"
                    );
                    assert!(
                        s.start_ns + s.dur_ns <= parent.start_ns + parent.dur_ns,
                        "{name}: span {i} outlives its parent"
                    );
                }
                None => assert_eq!(s.depth, 0, "{name}: rootless span {i} below top level"),
            }
        }

        // Round-trip: the Chrome export parses with bench::json and keeps
        // one "X" event per span with non-negative microsecond timestamps.
        let text = trace::chrome::to_chrome_json(&t).to_string_pretty();
        let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: bad JSON: {e}"));
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap_or_else(|| panic!("{name}: no traceEvents array"));
        let durations = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"));
        assert_eq!(durations.clone().count(), t.spans.len(), "{name}");
        for e in durations {
            assert!(e.get("ts").and_then(Json::as_f64).unwrap() >= 0.0, "{name}");
            assert!(
                e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0,
                "{name}"
            );
            assert!(e.get("cat").and_then(Json::as_str).is_some(), "{name}");
        }
    }
}

#[test]
fn identical_solves_emit_identical_counters() {
    let program = programs::fft_like(32, 40);
    trace::reset();
    let _ = run_solve(&program);
    let first = CounterSnapshot::now();
    trace::reset();
    let _ = run_solve(&program);
    let second = CounterSnapshot::now();
    assert!(!first.counters.is_empty(), "solve recorded no counters");
    assert_eq!(
        first.counters, second.counters,
        "counters must be deterministic"
    );
    assert_eq!(
        first.dists, second.dists,
        "distributions must be deterministic"
    );
    // Every layer contributed counters, not just spans.
    for layer in ["lp", "align", "distrib", "phases", "commsim"] {
        assert!(
            first.counters.keys().any(|k| k.starts_with(layer)),
            "no `{layer}.*` counter in {:?}",
            first.counters.keys().collect::<Vec<_>>()
        );
    }
}

#[test]
fn explainer_is_stable_and_sums_exactly_to_planned_cost() {
    let result = run_solve(&programs::fft_like(32, 40));
    let text = explain(&result);
    assert_eq!(text, explain(&result), "rendering must be deterministic");

    // Program order: phase 0, its boundary, then phase 1.
    let p0 = text.find("phase 0:").expect("phase 0 section");
    let b0 = text.find("boundary 0 -> 1").expect("boundary section");
    let p1 = text.find("phase 1:").expect("phase 1 section");
    assert!(p0 < b0 && b0 < p1, "sections out of order:\n{text}");

    // Every chosen distribution and every redistribution step is rendered.
    for d in &result.dynamic.per_phase {
        assert!(text.contains(&d.to_string()), "missing {d} in:\n{text}");
    }
    for s in result.dynamic.steps.iter().flatten() {
        assert!(
            text.contains(&format!("move {} ", s.name)),
            "missing step:\n{text}"
        );
    }

    // The rendered totals are the planned cost — the same numbers summed
    // in the same order, so the equality is exact, not within-epsilon.
    let in_phase: f64 = result
        .dynamic
        .chosen
        .iter()
        .zip(&result.layers)
        .map(|(&k, l)| l.costs[k])
        .sum();
    let redist: f64 = result
        .dynamic
        .steps
        .iter()
        .flatten()
        .map(|s| s.cost.elements())
        .sum();
    assert_eq!(in_phase + redist, result.dynamic.planned_cost);
    assert!(
        text.contains(&format!(
            "total: in-phase {in_phase:.1} + boundary {redist:.1} = {:.1} elements",
            result.dynamic.planned_cost
        )),
        "totals line wrong:\n{text}"
    );
}

#[test]
fn solve_summary_reports_the_runs_work() {
    trace::reset();
    let result = run_solve(&programs::fft_like(32, 40));
    let s = result.summary;
    assert_eq!(s.spans, 0, "span recording was disabled");
    assert!(s.peak_dp_layer_width >= 1, "{s}");
    assert!(s.lp_pivots > 0, "alignment solves pivot: {s}");
    assert!(
        s.pricer_hits + s.pricer_misses > 0,
        "boundaries were priced: {s}"
    );
    let line = s.to_string();
    assert!(line.starts_with("solve: "), "{line}");
    assert!(!line.contains('\n'), "one line: {line}");

    // With spans enabled the same solve also counts its spans.
    trace::reset();
    trace::configure(TraceConfig::enabled());
    let traced = run_solve(&programs::fft_like(32, 40));
    trace::configure(TraceConfig::default());
    trace::take();
    assert!(traced.summary.spans > 0, "{}", traced.summary);
    // The counter-derived numbers are unaffected by span recording.
    assert_eq!(traced.summary.lp_pivots, s.lp_pivots);
    assert_eq!(traced.summary.peak_dp_layer_width, s.peak_dp_layer_width);
}
